"""Analysis engines and pipelines.

An :class:`AnalysisEngine` transforms one CAS in place (adding annotations
or metadata).  Engines compose into :class:`AggregateEngine` chains — the
"Analysis Engines containing annotators" of §4.5.2 — and a
:class:`Pipeline` drives CASes from a reader through an aggregate into CAS
consumers, reproducing the processing layout of the paper's Fig. 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from .cas import CAS
from .errors import CasProcessingError, PipelineError


class AnalysisEngine:
    """Base class for annotators.  Subclasses override :meth:`process`."""

    #: Human-readable engine name; defaults to the class name.
    name: str = ""

    def __init__(self, **params: Any) -> None:
        self.params = params
        if not self.name:
            self.name = type(self).__name__
        self.initialize()

    def initialize(self) -> None:
        """Hook for one-time setup after parameters are bound."""

    def process(self, cas: CAS) -> None:
        """Analyse *cas* in place."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class FunctionEngine(AnalysisEngine):
    """Wrap a plain ``cas -> None`` callable as an engine."""

    def __init__(self, func: Callable[[CAS], None], name: str | None = None) -> None:
        self._func = func
        super().__init__()
        if name:
            self.name = name

    def process(self, cas: CAS) -> None:
        self._func(cas)


class AggregateEngine(AnalysisEngine):
    """Run a fixed sequence of engines over each CAS, in order."""

    def __init__(self, engines: Sequence[AnalysisEngine], name: str = "") -> None:
        self.engines = list(engines)
        super().__init__()
        if name:
            self.name = name

    def process(self, cas: CAS) -> None:
        for engine in self.engines:
            try:
                engine.process(cas)
            except Exception as exc:
                raise PipelineError(
                    f"engine {engine.name!r} failed: {exc}") from exc

    def __repr__(self) -> str:
        inner = ", ".join(engine.name for engine in self.engines)
        return f"<AggregateEngine [{inner}]>"


class CollectionReader:
    """Produces the CAS stream a pipeline consumes."""

    def read(self) -> Iterator[CAS]:
        """Yield CASes one by one."""
        raise NotImplementedError


class IterableReader(CollectionReader):
    """Adapt any iterable of CASes (or of texts) into a reader."""

    def __init__(self, items: Iterable[CAS | str]) -> None:
        self._items = items

    def read(self) -> Iterator[CAS]:
        for item in self._items:
            yield item if isinstance(item, CAS) else CAS(item)


class CasConsumer:
    """Receives each fully analysed CAS (e.g. to persist results)."""

    def consume(self, cas: CAS) -> None:
        """Handle one analysed CAS."""
        raise NotImplementedError

    def finish(self) -> None:
        """Hook called once after the last CAS."""


class CallbackConsumer(CasConsumer):
    """Wrap a plain callable as a consumer."""

    def __init__(self, func: Callable[[CAS], None]) -> None:
        self._func = func

    def consume(self, cas: CAS) -> None:
        self._func(cas)


class CollectingConsumer(CasConsumer):
    """Keeps every CAS in memory; handy in tests and small runs."""

    def __init__(self) -> None:
        self.cases: list[CAS] = []

    def consume(self, cas: CAS) -> None:
        self.cases.append(cas)


#: Valid ``error_policy`` values for :class:`Pipeline`.
ERROR_POLICIES = ("fail_fast", "skip", "quarantine")


@dataclass
class CasFailure:
    """One CAS that could not be fully processed.

    When ``stage`` is ``"consumer"``, ``consumer`` names the consumer that
    raised.  Consumers run in order and are *not* rolled back: every
    consumer before the failing one has already consumed the CAS, so sinks
    may be mutually inconsistent for it (e.g. ingested into one store but
    missing from another) until the quarantined CAS is reprocessed.
    """

    index: int                 #: position in the collection (0-based)
    stage: str                 #: ``"engine"`` or ``"consumer"``
    error: str                 #: ``repr`` of the final exception
    attempts: int              #: how many times processing was tried
    cas: CAS | None = None     #: retained under the ``quarantine`` policy
    consumer: str | None = None  #: name of the failing consumer, if any

    def __repr__(self) -> str:
        where = f"{self.stage}:{self.consumer}" if self.consumer else self.stage
        return (f"<CasFailure #{self.index} {where} "
                f"attempts={self.attempts} {self.error}>")


class PipelineRunReport(int):
    """The outcome of one :meth:`Pipeline.run`.

    Subclasses :class:`int` (the number of successfully processed CASes)
    so existing callers that treat the return value as a count keep
    working; the fault-tolerance extras ride along as attributes.
    """

    failures: list[CasFailure]
    policy: str

    def __new__(cls, processed: int, failures: list[CasFailure],
                policy: str) -> "PipelineRunReport":
        report = super().__new__(cls, processed)
        report.failures = failures
        report.policy = policy
        return report

    @property
    def processed(self) -> int:
        """CASes that passed every engine and consumer."""
        return int(self)

    @property
    def failed(self) -> int:
        """CASes recorded as failed (``skip`` / ``quarantine`` policies)."""
        return len(self.failures)

    @property
    def total(self) -> int:
        """All CASes read from the collection."""
        return self.processed + self.failed

    @property
    def quarantined(self) -> list[CAS]:
        """The retained failed CASes (``quarantine`` policy only)."""
        return [failure.cas for failure in self.failures
                if failure.cas is not None]

    @property
    def ok(self) -> bool:
        """Whether the run completed without a single failure."""
        return not self.failures

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (f"{self.processed}/{self.total} CAS(es) processed, "
                f"{self.failed} failed (policy={self.policy})")

    def __repr__(self) -> str:
        return f"<PipelineRunReport {self.summary()}>"


class Pipeline:
    """Reader → engines → consumers, the backbone of QATK (Fig. 8).

    Args:
        reader: source of CASes.
        engines: analysis engines applied to each CAS in order.
        consumers: sinks receiving each analysed CAS.
        error_policy: what to do when an engine or consumer raises on a
            CAS after retries are exhausted.  ``"fail_fast"`` (default,
            the historical behavior) propagates the
            :class:`~repro.uima.errors.PipelineError`; ``"skip"`` drops
            the CAS and records the failure in the run report;
            ``"quarantine"`` additionally retains the failed CAS on the
            report for later reprocessing.
        max_retries: additional attempts per CAS after the first failure
            (engines must be idempotent per CAS for retries to be safe —
            all of QATK's annotators are).
        retry_backoff: base delay in seconds before retry *n*, growing
            exponentially (``retry_backoff * 2**(n-1)``).
        sleep: injection point for the backoff clock (tests pass a no-op).
    """

    def __init__(self, reader: CollectionReader,
                 engines: Sequence[AnalysisEngine],
                 consumers: Sequence[CasConsumer] = (),
                 *,
                 error_policy: str = "fail_fast",
                 max_retries: int = 0,
                 retry_backoff: float = 0.0,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if reader is None:
            raise PipelineError("a pipeline needs a collection reader")
        if error_policy not in ERROR_POLICIES:
            raise PipelineError(
                f"error_policy must be one of {ERROR_POLICIES}, "
                f"got {error_policy!r}")
        if max_retries < 0:
            raise PipelineError("max_retries must be >= 0")
        self.reader = reader
        self.aggregate = AggregateEngine(engines, name="pipeline")
        self.consumers = list(consumers)
        self.error_policy = error_policy
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self._sleep = sleep

    def _analyse_with_retries(self, cas: CAS) -> tuple[Exception | None, int]:
        """Run the engines over one CAS, retrying with exponential
        backoff; returns (final error or None, attempts used)."""
        attempts = 0
        while True:
            attempts += 1
            try:
                self.aggregate.process(cas)
                return None, attempts
            except Exception as exc:
                if attempts > self.max_retries:
                    return exc, attempts
                if self.retry_backoff > 0:
                    self._sleep(self.retry_backoff * 2 ** (attempts - 1))

    def run(self) -> PipelineRunReport:
        """Process the whole collection.

        Returns a :class:`PipelineRunReport` — an ``int`` equal to the
        number of successfully processed CASes, carrying the failure list
        for the ``skip`` / ``quarantine`` policies.

        Raises:
            PipelineError: under ``fail_fast`` (default), on the first CAS
                whose retries are exhausted — today's behavior.
        """
        processed = 0
        failures: list[CasFailure] = []
        keep_cas = self.error_policy == "quarantine"
        for index, cas in enumerate(self.reader.read()):
            error, attempts = self._analyse_with_retries(cas)
            if error is not None:
                if self.error_policy == "fail_fast":
                    if attempts > 1:
                        raise CasProcessingError(
                            f"CAS #{index} failed after {attempts} "
                            f"attempts: {error}") from error
                    raise error
                failures.append(CasFailure(
                    index=index, stage="engine", error=repr(error),
                    attempts=attempts, cas=cas if keep_cas else None))
                continue
            failing: CasConsumer | None = None
            try:
                for consumer in self.consumers:
                    failing = consumer
                    consumer.consume(cas)
            except Exception as exc:
                if self.error_policy == "fail_fast":
                    raise
                failures.append(CasFailure(
                    index=index, stage="consumer", error=repr(exc),
                    attempts=attempts, cas=cas if keep_cas else None,
                    consumer=type(failing).__name__))
                continue
            processed += 1
        for consumer in self.consumers:
            consumer.finish()
        return PipelineRunReport(processed, failures, self.error_policy)

    def process_one(self, cas: CAS) -> CAS:
        """Run only the engines over a single CAS (application phase).

        Always fail-fast: single-CAS callers handle their own errors."""
        self.aggregate.process(cas)
        return cas
