"""CAS (de)serialization.

Apache UIMA persists analysis results as XMI; the equivalent here is a
compact JSON form carrying the document text, metadata and all typed
annotations.  It round-trips everything the QATK pipeline produces, which
makes intermediate analysis states inspectable and lets a pipeline be
split across processes ("hand the annotated CASes to another worker").

Metadata values must be JSON-representable; richer objects (like the
classifier's Recommendation) should be persisted through their own stores
instead.
"""

from __future__ import annotations

import json
from typing import Any

from .cas import CAS, Annotation, TypeSystem
from .errors import UimaError

FORMAT_VERSION = 1


def cas_to_dict(cas: CAS) -> dict[str, Any]:
    """A JSON-representable snapshot of *cas*.

    Raises:
        UimaError: if metadata contains non-JSON values.
    """
    annotations = [
        {"type": annotation.type_name, "begin": annotation.begin,
         "end": annotation.end, "features": annotation.features}
        for annotation in cas.iter_all()
    ]
    snapshot = {
        "version": FORMAT_VERSION,
        "text": cas.document_text,
        "metadata": cas.metadata,
        "annotations": annotations,
    }
    try:
        json.dumps(snapshot)
    except (TypeError, ValueError) as exc:
        raise UimaError(f"CAS contains non-serializable content: {exc}") from exc
    return snapshot


def cas_to_json(cas: CAS) -> str:
    """Serialize *cas* to a JSON string."""
    return json.dumps(cas_to_dict(cas), ensure_ascii=False, sort_keys=True)


def cas_from_dict(payload: dict[str, Any],
                  type_system: TypeSystem | None = None) -> CAS:
    """Rebuild a CAS from :func:`cas_to_dict` output.

    Raises:
        UimaError: on version mismatch or malformed payloads.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise UimaError(f"unsupported CAS format version {version!r}")
    cas = CAS(payload.get("text", ""), type_system=type_system)
    cas.metadata.update(payload.get("metadata", {}))
    for entry in payload.get("annotations", ()):
        try:
            cas.add(Annotation(entry["type"], entry["begin"], entry["end"],
                               dict(entry.get("features", {}))))
        except KeyError as exc:
            raise UimaError(f"annotation entry missing field {exc}") from exc
    return cas


def cas_from_json(text: str, type_system: TypeSystem | None = None) -> CAS:
    """Parse a CAS from a JSON string.

    Raises:
        UimaError: on malformed JSON or payloads.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise UimaError(f"malformed CAS JSON: {exc}") from exc
    return cas_from_dict(payload, type_system=type_system)
