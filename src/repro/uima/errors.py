"""Exception hierarchy for the mini-UIMA framework."""

from __future__ import annotations


class UimaError(Exception):
    """Base class for all analysis-framework errors."""


class TypeSystemError(UimaError):
    """An annotation type or feature is undeclared or misused."""


class AnnotationError(UimaError):
    """An annotation has invalid offsets for its CAS."""


class PipelineError(UimaError):
    """A pipeline is misconfigured (e.g. no reader, engine failure)."""
