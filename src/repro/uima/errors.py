"""Exception hierarchy for the mini-UIMA framework."""

from __future__ import annotations


class UimaError(Exception):
    """Base class for all analysis-framework errors."""


class TypeSystemError(UimaError):
    """An annotation type or feature is undeclared or misused."""


class AnnotationError(UimaError):
    """An annotation has invalid offsets for its CAS."""


class PipelineError(UimaError):
    """A pipeline is misconfigured (e.g. no reader, engine failure)."""


class CasProcessingError(PipelineError):
    """One CAS failed analysis after exhausting its retries.

    Raised under the ``fail_fast`` error policy; the ``skip`` and
    ``quarantine`` policies record the failure in the run report instead.
    """
