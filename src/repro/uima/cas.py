"""The Common Analysis Structure (CAS).

Mirrors the architectural role UIMA's CAS plays in the paper (§4.5.2): one
CAS holds one *data bundle* — the concatenated report texts plus structured
metadata (part ID, error code) — and is handed from one analysis engine to
the next, so later annotators can build on earlier findings.

Annotations are typed feature structures with ``begin``/``end`` character
offsets relative to the document text.  A small declared type system keeps
annotators honest about the types and features they produce.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from .errors import AnnotationError, TypeSystemError


@dataclass(frozen=True)
class TypeDescriptor:
    """Declares one annotation type and the features it may carry."""

    name: str
    features: frozenset[str] = frozenset()
    description: str = ""

    def validate_features(self, features: Mapping[str, Any]) -> None:
        """Raise if *features* uses an undeclared feature name."""
        undeclared = set(features) - self.features
        if undeclared:
            raise TypeSystemError(
                f"type {self.name!r} has no features {sorted(undeclared)}; "
                f"declared: {sorted(self.features)}")


class TypeSystem:
    """A registry of :class:`TypeDescriptor` objects."""

    def __init__(self, types: Iterable[TypeDescriptor] = ()) -> None:
        self._types: dict[str, TypeDescriptor] = {}
        for descriptor in types:
            self.declare(descriptor)

    def declare(self, descriptor: TypeDescriptor) -> TypeDescriptor:
        """Register a type; re-declaring an identical descriptor is a no-op.

        Raises:
            TypeSystemError: if a different descriptor with the same name
                already exists.
        """
        existing = self._types.get(descriptor.name)
        if existing is not None and existing != descriptor:
            raise TypeSystemError(f"conflicting redeclaration of type {descriptor.name!r}")
        self._types[descriptor.name] = descriptor
        return descriptor

    def get(self, name: str) -> TypeDescriptor:
        """Return the descriptor for *name*.

        Raises:
            TypeSystemError: if the type is undeclared.
        """
        try:
            return self._types[name]
        except KeyError:
            raise TypeSystemError(
                f"undeclared annotation type {name!r}; declared: {sorted(self._types)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def type_names(self) -> list[str]:
        """Sorted names of all declared types."""
        return sorted(self._types)


def default_type_system() -> TypeSystem:
    """The QATK type system: tokens, languages, concept mentions, sections."""
    return TypeSystem([
        TypeDescriptor("Token", frozenset({"normalized"}),
                       "One whitespace/punctuation-delimited word."),
        TypeDescriptor("Language", frozenset({"language", "confidence"}),
                       "Detected language of a document span."),
        TypeDescriptor("ConceptMention", frozenset(
            {"concept_id", "category", "language", "matched", "canonical"}),
            "A taxonomy concept occurring in the text (§4.5.3)."),
        TypeDescriptor("Section", frozenset({"source"}),
                       "One report inside the concatenated bundle document."),
    ])


@dataclass
class Annotation:
    """A typed feature structure anchored to a text span.

    Attributes:
        type_name: the declared annotation type.
        begin: inclusive start offset into the CAS document text.
        end: exclusive end offset.
        features: feature name -> value mapping.
    """

    type_name: str
    begin: int
    end: int
    features: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.begin < 0 or self.end < self.begin:
            raise AnnotationError(
                f"invalid span [{self.begin}, {self.end}) for {self.type_name}")

    @property
    def span(self) -> tuple[int, int]:
        """The (begin, end) offsets."""
        return (self.begin, self.end)

    def __len__(self) -> int:
        return self.end - self.begin

    def covers(self, other: "Annotation") -> bool:
        """Whether this annotation's span fully encloses *other*'s."""
        return self.begin <= other.begin and other.end <= self.end

    def overlaps(self, other: "Annotation") -> bool:
        """Whether the two spans share at least one character."""
        return self.begin < other.end and other.begin < self.end


class CAS:
    """One analysis subject: document text, metadata and typed annotations."""

    def __init__(self, document_text: str = "",
                 type_system: TypeSystem | None = None) -> None:
        self._document_text = document_text
        self.type_system = type_system if type_system is not None else default_type_system()
        self.metadata: dict[str, Any] = {}
        self._annotations: dict[str, list[Annotation]] = {}
        self._sort_keys: dict[str, list[tuple[int, int]]] = {}

    # ------------------------------------------------------------------ #
    # document text

    @property
    def document_text(self) -> str:
        """The analysed text.  Immutable once annotations exist."""
        return self._document_text

    def set_document_text(self, text: str) -> None:
        """Set the text; only allowed while the CAS has no annotations.

        Raises:
            AnnotationError: if annotations already reference the old text.
        """
        if any(self._annotations.values()):
            raise AnnotationError("cannot replace document text once annotated")
        self._document_text = text

    def covered_text(self, annotation: Annotation) -> str:
        """The substring of the document covered by *annotation*."""
        return self._document_text[annotation.begin:annotation.end]

    # ------------------------------------------------------------------ #
    # annotations

    def add(self, annotation: Annotation) -> Annotation:
        """Add an annotation, validating type, features and offsets.

        Annotations are kept sorted by (begin, end) per type.

        Raises:
            TypeSystemError: undeclared type or feature.
            AnnotationError: span outside the document text.
        """
        descriptor = self.type_system.get(annotation.type_name)
        descriptor.validate_features(annotation.features)
        if annotation.end > len(self._document_text):
            raise AnnotationError(
                f"span [{annotation.begin}, {annotation.end}) exceeds document "
                f"length {len(self._document_text)}")
        bucket = self._annotations.setdefault(annotation.type_name, [])
        keys = self._sort_keys.setdefault(annotation.type_name, [])
        position = bisect.bisect_right(keys, annotation.span)
        keys.insert(position, annotation.span)
        bucket.insert(position, annotation)
        return annotation

    def annotate(self, type_name: str, begin: int, end: int,
                 **features: Any) -> Annotation:
        """Convenience wrapper building and adding an :class:`Annotation`."""
        return self.add(Annotation(type_name, begin, end, features))

    def select(self, type_name: str) -> list[Annotation]:
        """All annotations of *type_name* in text order.

        Raises:
            TypeSystemError: if the type is undeclared.
        """
        self.type_system.get(type_name)
        return list(self._annotations.get(type_name, ()))

    def select_covered(self, type_name: str, cover: Annotation) -> list[Annotation]:
        """Annotations of *type_name* fully inside *cover*'s span."""
        return [annotation for annotation in self.select(type_name)
                if cover.covers(annotation)]

    def select_overlapping(self, type_name: str, cover: Annotation) -> list[Annotation]:
        """Annotations of *type_name* overlapping *cover*'s span."""
        return [annotation for annotation in self.select(type_name)
                if cover.overlaps(annotation)]

    def remove(self, annotation: Annotation) -> None:
        """Remove one previously added annotation.

        Raises:
            AnnotationError: if it is not in this CAS.
        """
        bucket = self._annotations.get(annotation.type_name, [])
        try:
            position = bucket.index(annotation)
        except ValueError:
            raise AnnotationError("annotation not in this CAS") from None
        del bucket[position]
        del self._sort_keys[annotation.type_name][position]

    def remove_all(self, type_name: str) -> int:
        """Remove every annotation of *type_name*; returns the count."""
        bucket = self._annotations.pop(type_name, [])
        self._sort_keys.pop(type_name, None)
        return len(bucket)

    def annotation_count(self, type_name: str | None = None) -> int:
        """Number of annotations of one type, or of all types."""
        if type_name is not None:
            return len(self._annotations.get(type_name, ()))
        return sum(len(bucket) for bucket in self._annotations.values())

    def iter_all(self) -> Iterator[Annotation]:
        """Iterate over every annotation, grouped by type, in text order."""
        for type_name in sorted(self._annotations):
            yield from self._annotations[type_name]

    def __repr__(self) -> str:
        return (f"<CAS text={len(self._document_text)} chars, "
                f"annotations={self.annotation_count()}>")
