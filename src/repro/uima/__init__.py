"""Mini-UIMA: the Unstructured Information Management substrate (§4.5.2).

The paper builds QATK on Apache UIMA; this package recreates the concepts
the paper relies on — a typed Common Analysis Structure handed between
composable analysis engines, collection readers and CAS consumers — in pure
Python.
"""

from .cas import (CAS, Annotation, TypeDescriptor, TypeSystem,
                  default_type_system)
from .engine import (ERROR_POLICIES, AggregateEngine, AnalysisEngine,
                     CallbackConsumer, CasConsumer, CasFailure,
                     CollectingConsumer, CollectionReader, FunctionEngine,
                     IterableReader, Pipeline, PipelineRunReport)
from .errors import (AnnotationError, CasProcessingError, PipelineError,
                     TypeSystemError, UimaError)
from .serialize import cas_from_dict, cas_from_json, cas_to_dict, cas_to_json

__all__ = [
    "ERROR_POLICIES",
    "AggregateEngine",
    "AnalysisEngine",
    "Annotation",
    "AnnotationError",
    "CAS",
    "CallbackConsumer",
    "CasConsumer",
    "CasFailure",
    "CasProcessingError",
    "CollectingConsumer",
    "CollectionReader",
    "FunctionEngine",
    "IterableReader",
    "Pipeline",
    "PipelineError",
    "PipelineRunReport",
    "TypeDescriptor",
    "TypeSystem",
    "TypeSystemError",
    "UimaError",
    "cas_from_dict",
    "cas_from_json",
    "cas_to_dict",
    "cas_to_json",
    "default_type_system",
]
