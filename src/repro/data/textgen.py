"""Report text rendering.

Turns the corpus plan's semantics (component concepts, symptom signature,
code jargon) into report texts whose information content per source follows
§5.3.2 of the paper:

* **mechanic reports**: "poor in detail, focused on superficial problem
  description and often error-riddled" — vague or wrong symptom mentions,
  heavy noise, customer-voice phrasing;
* **initial OEM reports**: optional, administrative, nearly signal-free;
* **supplier reports**: "more detail and include descriptions of potential
  causes" — the full symptom signature, component mentions, measurement
  jargon and the code-specific tokens;
* **final OEM reports** (training only): clean expert summary.

Texts mix German and English (§3.2) and are degraded by
:mod:`repro.data.messy` according to per-source noise presets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..taxonomy.model import ENGLISH, GERMAN, Taxonomy
from .bundle import Report, ReportSource
from .messy import messify_for_source
from .plan import CodePlan, PartPlan

#: Generic complaints mechanics write instead of a precise symptom.
GENERIC_COMPLAINTS = {
    GERMAN: ("ohne Funktion", "geht nicht", "macht Probleme",
             "funktioniert nicht richtig", "Kunde unzufrieden",
             "fällt manchmal aus"),
    ENGLISH: ("does not work", "not working properly", "has problems",
              "keeps failing", "customer not happy", "acts up sometimes"),
}

_MECHANIC_OPENERS = {
    GERMAN: ("Kunde beanstandet", "Kunde meldet", "Beanstandung", "Kd. sagt",
             "Fahrzeug kam mit"),
    ENGLISH: ("customer complains about", "client says that", "complaint",
              "cust. reports", "vehicle came in with"),
}

_MECHANIC_CLOSERS = {
    GERMAN: ("Bitte prüfen.", "Teil ausgebaut und eingeschickt.",
             "Zur Prüfung an Werk.", "Teil getauscht.", ""),
    ENGLISH: ("please check.", "part removed and sent in.",
              "sent for inspection.", "part replaced.", ""),
}

_INITIAL_TEMPLATES = {
    GERMAN: ("Eingangsprüfung {number}, keine eindeutigen Ergebnisse, "
             "weiter an Lieferant.",
             "Sichtprüfung {number} durchgeführt, etwas Schmutz entfernt, "
             "Weiterleitung an Lieferant.",
             "Vorprüfung {number} ohne Befund, Teil geht an Lieferant."),
    ENGLISH: ("id test {number}, no clear results, sending on to supplier.",
              "visual inspection {number} done, removed some dirt, "
              "forwarding to supplier.",
              "initial check {number} inconclusive, part goes to supplier."),
}

_SUPPLIER_OPENERS = {
    GERMAN: ("Analyse Eingang:", "Befundung:", "Prüfbericht:",
             "Eingangsanalyse abgeschlossen:"),
    ENGLISH: ("incoming analysis:", "findings:", "test report:",
              "inspection completed:"),
}

_SUPPLIER_CAUSE = {
    GERMAN: ("Ursache liegt bei", "Fehlerursache:", "Grund vermutlich"),
    ENGLISH: ("root cause at", "cause of failure:", "reason probably"),
}

_FINAL_TEMPLATES = {
    GERMAN: ("Befund bestätigt: {symptoms}. Betroffen: {component}. "
             "Fehlercode vergeben. Referenz {jargon}.",
             "Abschlussbewertung: {symptoms} an {component} nachgewiesen. "
             "Kennung {jargon}."),
    ENGLISH: ("finding confirmed: {symptoms}. affected: {component}. "
              "error code assigned. reference {jargon}.",
              "final assessment: {symptoms} verified on {component}. "
              "identifier {jargon}."),
}

_FILLER = {
    GERMAN: ("Kilometerstand {km}", "Erstzulassung {year}", "siehe Anhang",
             "Foto beigefügt", "Rücksprache erfolgt", "wie telefonisch besprochen",
             "Termin vereinbart", "im Rahmen der Garantie"),
    ENGLISH: ("mileage {km}", "first registration {year}", "see attachment",
              "photo attached", "as discussed", "as per phone call",
              "appointment scheduled", "under warranty"),
}


@dataclass(frozen=True)
class RenderContext:
    """Everything the renderer needs for one bundle."""

    part: PartPlan
    code: CodePlan
    taxonomy: Taxonomy
    rng: random.Random


def _surface(context: RenderContext, concept_id: str, language: str) -> str:
    """A surface form of *concept_id* in *language* (fallback: any)."""
    concept = context.taxonomy.get(concept_id)
    forms = concept.surface_forms(language)
    if not forms:
        for other in sorted(concept.languages()):
            forms = concept.surface_forms(other)
            if forms:
                break
    if not forms:
        return concept_id
    return context.rng.choice(forms)


def _filler(context: RenderContext, language: str) -> str:
    # Numbers come from small pools: free-text numerals would act as
    # accidental unique features and drown the real bag-of-words signal.
    template = context.rng.choice(_FILLER[language])
    return template.format(km=context.rng.choice((30, 60, 90, 120, 150, 180)) * 1000,
                           year=context.rng.randrange(2008, 2015))


def pick_language(rng: random.Random, german_probability: float = 0.55) -> str:
    """Pick the dominant language of a report."""
    return GERMAN if rng.random() < german_probability else ENGLISH


def render_mechanic_report(context: RenderContext, language: str,
                           *, true_symptom_probability: float = 0.30,
                           wrong_symptom_probability: float = 0.20) -> Report:
    """The mechanic's short, vague, error-riddled complaint."""
    rng = context.rng
    component = _surface(context, rng.choice(context.part.component_concept_ids),
                         language)
    roll = rng.random()
    if roll < true_symptom_probability:
        symptom = _surface(context, rng.choice(context.code.symptom_concept_ids),
                           language)
    elif roll < true_symptom_probability + wrong_symptom_probability:
        other_codes = [code for code in context.part.codes
                       if code.group_id != context.code.group_id]
        if other_codes:
            wrong = rng.choice(other_codes)
            symptom = _surface(context, rng.choice(wrong.symptom_concept_ids),
                               language)
        else:
            symptom = rng.choice(GENERIC_COMPLAINTS[language])
    else:
        symptom = rng.choice(GENERIC_COMPLAINTS[language])
    opener = rng.choice(_MECHANIC_OPENERS[language])
    closer = rng.choice(_MECHANIC_CLOSERS[language])
    duration = rng.randrange(2, 6)
    since = (f"tritt seit {duration} Wochen immer wieder auf."
             if language == GERMAN
             else f"has been happening for {duration} weeks now.")
    pieces = [f"{opener} {component}.", f"{component} {symptom}."]
    if rng.random() < 0.6:
        pieces.append(since)
    if rng.random() < 0.85:
        pieces.append(_filler(context, language) + ".")
    if closer:
        pieces.append(closer)
    text = " ".join(pieces)
    text = messify_for_source(text, "mechanic", rng)
    return Report(ReportSource.MECHANIC, text, language)


def render_initial_report(context: RenderContext, language: str) -> Report:
    """The optional, administrative initial OEM report."""
    rng = context.rng
    template = rng.choice(_INITIAL_TEMPLATES[language])
    text = template.format(number=rng.randrange(1, 9) * 100)
    if rng.random() < 0.35:
        component = _surface(context, context.part.base_concept_id, language)
        text = f"{component}: {text}"
    text = messify_for_source(text, "oem_initial", rng)
    return Report(ReportSource.OEM_INITIAL, text, language)


def render_supplier_report(context: RenderContext, language: str,
                           *, symptom_probability: float = 0.95,
                           jargon_probability: float = 0.85,
                           signature_dropout: float = 0.08) -> Report:
    """The supplier's detailed analysis: symptoms, causes, measurements.

    With probability *signature_dropout* the report names no symptom
    concept at all (only generic wording plus measurements) — these are the
    bundles on which the domain-specific bag-of-concepts features carry no
    error signal, one of the reasons the taxonomy features "do not
    represent ultimately accurate features for classification" (§5.2.2).
    """
    rng = context.rng
    part = context.part
    code = context.code
    dropout = rng.random() < signature_dropout
    # The opener and the checked-items list are supplier boilerplate: the
    # same QA template every time, canonical part names, fixed order.
    pieces: list[str] = [_SUPPLIER_OPENERS[language][0]]
    components = list(part.component_concept_ids)
    primary_component = _surface(context, components[0], language)
    pieces.append(f"{primary_component} geprüft."
                  if language == GERMAN else f"{primary_component} inspected.")

    def canonical(concept_id: str) -> str:
        concept = context.taxonomy.get(concept_id)
        return (concept.labels.get(language)
                or next(iter(concept.labels.values()), concept_id))

    checked = [canonical(concept_id) for concept_id in components]
    pieces.append(("Geprüfte Umfänge: " if language == GERMAN
                   else "items checked: ") + ", ".join(checked) + ".")
    rng.shuffle(components)
    confirmed = "bestätigt" if language == GERMAN else "confirmed"
    if dropout:
        pieces.append("Fehlfunktion laut Messprotokoll, Symptomatik nicht "
                      "reproduzierbar." if language == GERMAN else
                      "malfunction per measurement log, symptoms not "
                      "reproducible.")
    else:
        for symptom_id in code.symptom_concept_ids:
            if rng.random() < symptom_probability:
                symptom = _surface(context, symptom_id, language)
                component = _surface(context, rng.choice(components[:3]),
                                     language)
                pieces.append(f"{component}: {symptom} {confirmed}.")
        if rng.random() < 0.7 and len(components) > 1:
            extra_component = _surface(context, components[1], language)
            extra_symptom = _surface(context,
                                     rng.choice(code.symptom_concept_ids),
                                     language)
            pieces.append(f"{extra_component} {extra_symptom}.")
    jargon_used = [token for token in code.jargon
                   if rng.random() < jargon_probability]
    if jargon_used:
        cause = rng.choice(_SUPPLIER_CAUSE[language])
        pieces.append(f"{cause} {' '.join(jargon_used)}.")
    measured = rng.randrange(2, 20) * 5
    limit = measured + 5
    pieces.append(f"Messwert {measured} von {limit} außerhalb der Toleranz."
                  if language == GERMAN
                  else f"measured value {measured} of {limit} out of tolerance.")
    if not dropout:
        summary_symptom = _surface(context, code.symptom_concept_ids[0],
                                   language)
        pieces.append(f"Zusammenfassung: {summary_symptom} nachgewiesen."
                      if language == GERMAN
                      else f"summary: {summary_symptom} verified.")
    if rng.random() < 0.6:
        pieces.append(_filler(context, language) + ".")
    text = " ".join(pieces)
    text = messify_for_source(text, "supplier", rng)
    return Report(ReportSource.SUPPLIER, text, language)


def render_final_report(context: RenderContext, language: str,
                        *, jargon_probability: float = 0.9) -> Report:
    """The quality expert's clean final summary (training data only)."""
    rng = context.rng
    symptoms = ", ".join(_surface(context, sid, language)
                         for sid in context.code.symptom_concept_ids)
    component = _surface(context, context.part.base_concept_id, language)
    jargon = (context.code.jargon[0]
              if rng.random() < jargon_probability else "intern")
    template = rng.choice(_FINAL_TEMPLATES[language])
    text = template.format(symptoms=symptoms, component=component,
                           jargon=jargon)
    text = messify_for_source(text, "oem_final", rng)
    return Report(ReportSource.OEM_FINAL, text, language)


def render_part_description(context: RenderContext) -> str:
    """The standardized bilingual part id description (§3.2)."""
    english = _surface(context, context.part.base_concept_id, ENGLISH)
    german = _surface(context, context.part.base_concept_id, GERMAN)
    if english == german:
        return f"{english} assembly"
    return f"{german} / {english} assembly"


def render_error_description(context: RenderContext) -> str:
    """The standardized bilingual error code description (training only)."""
    german = " ".join(_surface(context, sid, GERMAN)
                      for sid in context.code.symptom_concept_ids)
    english = " ".join(_surface(context, sid, ENGLISH)
                       for sid in context.code.symptom_concept_ids)
    return f"{german} / {english} [{context.code.jargon[0]} {context.code.jargon[1]}]"
