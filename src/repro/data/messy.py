"""Messy-text noise injection.

§1.2 defines "messy data" as "text which consists of non-standard,
domain-specific language, riddled with spelling errors, idiosyncratic and
non-idiomatic expressions and OEM-internal abbreviations".  This module
turns clean template output into such text, with a controllable noise
level so the generator can make mechanic reports much messier than
supplier reports (§5.3.2).

All randomness comes from a caller-provided ``random.Random``.
"""

from __future__ import annotations

import random

#: OEM-internal abbreviations applied to common words (both languages).
ABBREVIATIONS: dict[str, str] = {
    "defekt": "def.",
    "gebrochen": "gebr.",
    "funktioniert": "funkt.",
    "nicht": "n.",
    "links": "li.",
    "rechts": "re.",
    "vorne": "vo.",
    "hinten": "hi.",
    "Steuergerät": "Stg.",
    "Fahrzeug": "Fzg.",
    "Kunde": "Kd.",
    "Werkstatt": "Wkst.",
    "ersetzt": "ers.",
    "geprüft": "gepr.",
    "Prüfung": "Prfg.",
    "customer": "cust.",
    "replaced": "repl.",
    "checked": "chk.",
    "defective": "defect.",
    "according": "acc.",
    "approximately": "approx.",
    "vehicle": "veh.",
}

#: Umlaut degradations seen in real mechanic typing: either the correct
#: digraph ("ü" -> "ue", recoverable by normalization) or plain vowel
#: ("ü" -> "u", a genuine typo).
_UMLAUT_DIGRAPH = {"ä": "ae", "ö": "oe", "ü": "ue", "ß": "ss",
                   "Ä": "Ae", "Ö": "Oe", "Ü": "Ue"}
_UMLAUT_PLAIN = {"ä": "a", "ö": "o", "ü": "u", "ß": "s",
                 "Ä": "A", "Ö": "O", "Ü": "U"}

_NEIGHBOR_KEYS = {
    "a": "sq", "b": "vn", "c": "xv", "d": "sf", "e": "wr", "f": "dg",
    "g": "fh", "h": "gj", "i": "uo", "j": "hk", "k": "jl", "l": "k",
    "m": "n", "n": "bm", "o": "ip", "p": "o", "q": "wa", "r": "et",
    "s": "ad", "t": "rz", "u": "zi", "v": "cb", "w": "qe", "x": "yc",
    "y": "x", "z": "tu",
}


def corrupt_word(word: str, rng: random.Random) -> str:
    """Apply one random character-level typo to *word*."""
    if len(word) < 3:
        return word
    kind = rng.randrange(4)
    position = rng.randrange(1, len(word) - 1)
    if kind == 0:  # swap adjacent characters
        chars = list(word)
        chars[position - 1], chars[position] = chars[position], chars[position - 1]
        return "".join(chars)
    if kind == 1:  # drop a character
        return word[:position] + word[position + 1:]
    if kind == 2:  # duplicate a character
        return word[:position] + word[position] + word[position:]
    # substitute with a keyboard neighbour
    lower = word[position].lower()
    neighbours = _NEIGHBOR_KEYS.get(lower)
    if not neighbours:
        return word
    replacement = rng.choice(neighbours)
    if word[position].isupper():
        replacement = replacement.upper()
    return word[:position] + replacement + word[position + 1:]


def degrade_umlauts(word: str, rng: random.Random,
                    plain_probability: float = 0.4) -> str:
    """Replace umlauts by digraphs, or (with *plain_probability*) by the
    bare vowel, which genuinely breaks dictionary matching."""
    table = _UMLAUT_PLAIN if rng.random() < plain_probability else _UMLAUT_DIGRAPH
    return "".join(table.get(char, char) for char in word)


def abbreviate(word: str) -> str:
    """Return the OEM-internal abbreviation for *word* if one exists."""
    if word in ABBREVIATIONS:
        return ABBREVIATIONS[word]
    lowered = word.lower()
    if lowered in ABBREVIATIONS:
        return ABBREVIATIONS[lowered]
    return word


def messify(text: str, rng: random.Random, *, typo_probability: float = 0.05,
            abbreviation_probability: float = 0.15,
            umlaut_probability: float = 0.35,
            case_noise_probability: float = 0.03) -> str:
    """Inject messiness into *text*.

    Args:
        text: clean template output.
        rng: the seeded random source.
        typo_probability: per-word chance of a character-level typo.
        abbreviation_probability: per-word chance of using the OEM-internal
            abbreviation (when one exists).
        umlaut_probability: per-word chance of degrading umlauts.
        case_noise_probability: per-word chance of random upper/lowercasing.
    """
    words = text.split(" ")
    noisy: list[str] = []
    for word in words:
        if not word:
            noisy.append(word)
            continue
        if abbreviation_probability and rng.random() < abbreviation_probability:
            word = abbreviate(word)
        if umlaut_probability and any(c in _UMLAUT_DIGRAPH for c in word):
            if rng.random() < umlaut_probability:
                word = degrade_umlauts(word, rng)
        if typo_probability and rng.random() < typo_probability:
            word = corrupt_word(word, rng)
        if case_noise_probability and rng.random() < case_noise_probability:
            word = word.upper() if rng.random() < 0.5 else word.lower()
        noisy.append(word)
    return " ".join(noisy)


#: Preset noise levels for the different report sources (§5.3.2: mechanic
#: reports are "poor in detail ... and often error-riddled", supplier
#: reports "contain more detail").
NOISE_PRESETS: dict[str, dict[str, float]] = {
    "mechanic": {"typo_probability": 0.07, "abbreviation_probability": 0.22,
                 "umlaut_probability": 0.45, "case_noise_probability": 0.06},
    "oem_initial": {"typo_probability": 0.02, "abbreviation_probability": 0.25,
                    "umlaut_probability": 0.20, "case_noise_probability": 0.01},
    "supplier": {"typo_probability": 0.012, "abbreviation_probability": 0.08,
                 "umlaut_probability": 0.15, "case_noise_probability": 0.01},
    "oem_final": {"typo_probability": 0.004, "abbreviation_probability": 0.10,
                  "umlaut_probability": 0.05, "case_noise_probability": 0.0},
}


def messify_for_source(text: str, source: str, rng: random.Random) -> str:
    """Apply the preset noise level of a report *source* to *text*.

    Raises:
        KeyError: if *source* has no preset.
    """
    return messify(text, rng, **NOISE_PRESETS[source])
