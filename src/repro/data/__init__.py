"""Data model and synthetic corpora (§3.2 substitute, §5.4 substitute)."""

from .bundle import DataBundle, Report, ReportSource, TEST_TIME_SOURCES
from .generator import (Corpus, GeneratorConfig, corpus_statistics,
                        generate_corpus)
from .messy import (ABBREVIATIONS, NOISE_PRESETS, abbreviate, corrupt_word,
                    degrade_umlauts, messify, messify_for_source)
from .nhtsa import (FLAT_CMPL_FIELDS, MAKES, Complaint, complaints_by_make,
                    complaints_from_flat, complaints_to_flat,
                    generate_complaints)
from .plan import (DEFAULT_PARAMETERS, CodePlan, CorpusPlan, PartPlan,
                   plan_corpus)
from .schema import (BUNDLE_SCHEMA, COMPLAINT_SCHEMA, REPORT_SCHEMA,
                     create_raw_tables, load_bundle, load_bundles,
                     load_complaints, store_bundles, store_complaints)

__all__ = [
    "ABBREVIATIONS",
    "BUNDLE_SCHEMA",
    "COMPLAINT_SCHEMA",
    "CodePlan",
    "Complaint",
    "Corpus",
    "CorpusPlan",
    "DEFAULT_PARAMETERS",
    "DataBundle",
    "GeneratorConfig",
    "MAKES",
    "NOISE_PRESETS",
    "PartPlan",
    "REPORT_SCHEMA",
    "Report",
    "ReportSource",
    "TEST_TIME_SOURCES",
    "abbreviate",
    "FLAT_CMPL_FIELDS",
    "complaints_by_make",
    "complaints_from_flat",
    "complaints_to_flat",
    "corpus_statistics",
    "corrupt_word",
    "create_raw_tables",
    "degrade_umlauts",
    "generate_complaints",
    "generate_corpus",
    "load_bundle",
    "load_bundles",
    "load_complaints",
    "messify",
    "messify_for_source",
    "plan_corpus",
    "store_bundles",
    "store_complaints",
]
