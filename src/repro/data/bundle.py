"""Data-bundle model (§3.2, Fig. 2/3).

A *data bundle* is "all data pertaining to an individual component": a
unique reference number, an article code, a part ID, a final error code
(absent before classification), a supplier responsibility code, and three
or four textual reports accumulated along the evaluation process.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable


class ReportSource(enum.Enum):
    """Who wrote a report, in process order (Fig. 2)."""

    MECHANIC = "mechanic"
    OEM_INITIAL = "oem_initial"
    SUPPLIER = "supplier"
    OEM_FINAL = "oem_final"

    @classmethod
    def parse(cls, name: str) -> "ReportSource":
        """Return the source named *name* (case-insensitive).

        Raises:
            ValueError: on unknown names.
        """
        try:
            return cls(name.strip().lower())
        except ValueError:
            known = ", ".join(source.value for source in cls)
            raise ValueError(f"unknown report source {name!r}; expected one of {known}") from None


#: Report sources available at test/application time (§3.2: the final OEM
#: report is "unavailable as a source for textual indicators in data which
#: have not yet been assigned an error code").
TEST_TIME_SOURCES = (ReportSource.MECHANIC, ReportSource.OEM_INITIAL,
                     ReportSource.SUPPLIER)


@dataclass(frozen=True)
class Report:
    """One textual report about a damaged part."""

    source: ReportSource
    text: str
    language: str = "unknown"

    def __post_init__(self) -> None:
        if not isinstance(self.source, ReportSource):
            raise TypeError("source must be a ReportSource")


@dataclass
class DataBundle:
    """All data pertaining to one evaluated car part.

    Attributes:
        ref_no: unique reference number.
        part_id: coarse part identifier (31 distinct values in the corpus).
        article_code: fine-grained article code (831 distinct values).
        error_code: final error code, or None before classification.
        responsibility_code: supplier damage responsibility code, or None.
        reports: the accumulated textual reports.
        part_description: standardized part id description (DE+EN).
        error_description: standardized error code description; training
            only — never available for unclassified bundles.
    """

    ref_no: str
    part_id: str
    article_code: str
    error_code: str | None = None
    responsibility_code: str | None = None
    reports: list[Report] = field(default_factory=list)
    part_description: str = ""
    error_description: str = ""

    def report(self, source: ReportSource) -> Report | None:
        """The report written by *source*, or None if absent."""
        for report in self.reports:
            if report.source is source:
                return report
        return None

    def has_report(self, source: ReportSource) -> bool:
        """Whether a report from *source* exists."""
        return self.report(source) is not None

    def document_text(self, sources: Iterable[ReportSource] = TEST_TIME_SOURCES,
                      *, include_part_description: bool = True,
                      include_error_description: bool = False) -> str:
        """Combine the selected reports into one analysis document.

        This is step 1 of the pipeline ("combine related reports into one
        document").  The default reproduces the *test phase* view: mechanic
        + optional initial + supplier reports plus the part id description.
        Pass ``include_error_description=True`` (and all four sources) for
        the *training phase* view.
        """
        wanted = list(sources)
        parts = [report.text for source in wanted
                 for report in self.reports if report.source is source]
        if include_part_description and self.part_description:
            parts.append(self.part_description)
        if include_error_description and self.error_description:
            parts.append(self.error_description)
        return "\n".join(part for part in parts if part)

    def training_text(self) -> str:
        """The full training-phase document (all reports + descriptions)."""
        return self.document_text(tuple(ReportSource),
                                  include_part_description=True,
                                  include_error_description=True)

    def without_label(self) -> "DataBundle":
        """A copy stripped of everything unknowable pre-classification."""
        return replace(self, error_code=None, error_description="",
                       reports=[report for report in self.reports
                                if report.source is not ReportSource.OEM_FINAL])

    def word_count(self, sources: Iterable[ReportSource] = TEST_TIME_SOURCES) -> int:
        """Number of tokens in the combined test-phase document."""
        from ..text.tokenizer import tokenize
        return len(tokenize(self.document_text(sources)))
