"""Synthetic NHTSA ODI complaints corpus (§5.4 substitute).

The paper's extended use case classifies complaints from the NHTSA Office
of Defects Investigation database (safercar.gov) with the OEM-trained
knowledge base to compare error distributions across manufacturers.  The
real dump is a network resource, so we synthesize an equivalent corpus
with the properties §5.4 relies on:

* **English only** and in a completely different register — verbose,
  first-person customer narratives instead of telegraphic QA shorthand —
  so the bag-of-words model degrades across sources while bag-of-concepts
  transfers ("the bag-of-concepts approach is in principle independent of
  the document language or other text features"),
* the **same underlying component/symptom space** (taxonomy concepts do
  occur in the complaints),
* a **shifted error distribution** per manufacturer, so the side-by-side
  comparison of Fig. 14 shows different top codes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..taxonomy.model import ENGLISH, Taxonomy
from .plan import CodePlan, CorpusPlan

#: Vehicle makes in the synthetic complaints database.  "OURS" plays the
#: role of the OEM's own brand; the rest are competitors.
MAKES = ("OURS", "COMPETITOR A", "COMPETITOR B")

_NARRATIVE_OPENERS = (
    "I was driving on the highway when",
    "while parked in my driveway,",
    "my wife noticed that",
    "after picking up the car from the dealer,",
    "on a cold morning,",
    "during a long road trip,",
    "shortly after the warranty expired,",
)

_NARRATIVE_CLOSERS = (
    "the dealer could not reproduce the problem.",
    "this is a serious safety concern for my family.",
    "I had to pay for the repair myself.",
    "the problem keeps coming back.",
    "nobody was hurt but it was very scary.",
    "I expect the manufacturer to issue a recall.",
)


@dataclass(frozen=True)
class Complaint:
    """One ODI-style complaint record."""

    cmplid: str
    make: str
    model_year: int
    component_class: str
    cdescr: str
    #: The planted ground-truth error code (hidden from classification;
    #: used to validate the distribution comparison).
    planted_code: str


def _narrative(rng: random.Random, taxonomy: Taxonomy, code: CodePlan,
               component_ids: tuple[str, ...]) -> str:
    def surface(concept_id: str) -> str:
        concept = taxonomy.get(concept_id)
        forms = concept.surface_forms(ENGLISH)
        return rng.choice(forms) if forms else concept_id

    component = surface(rng.choice(component_ids))
    symptom = surface(rng.choice(code.symptom_concept_ids))
    pieces = [rng.choice(_NARRATIVE_OPENERS),
              f"the {component} suddenly showed {symptom}.",
              f"I noticed the {component} was acting strange and there was "
              f"{symptom} coming from it."]
    if rng.random() < 0.5:
        second = surface(code.symptom_concept_ids[-1])
        pieces.append(f"later there was also {second}.")
    pieces.append(rng.choice(_NARRATIVE_CLOSERS))
    return " ".join(pieces)


def generate_complaints(taxonomy: Taxonomy, plan: CorpusPlan,
                        count: int = 1800, seed: int = 4242) -> list[Complaint]:
    """Generate *count* synthetic ODI complaints.

    Every make draws from the same part/symptom world but with its own
    permutation of code frequencies, so the per-make error distributions
    differ — the signal the Fig. 14 comparison screen visualizes.
    """
    rng = random.Random(seed)
    parts_by_id = {part.part_id: part for part in plan.parts}
    repeated_codes = [code for part in plan.parts for code in part.repeated_codes]
    complaints: list[Complaint] = []
    # per-make frequency permutation over codes
    make_weights: dict[str, list[float]] = {}
    for make in MAKES:
        weights = [1.0 / (rank ** 1.1) for rank in range(1, len(repeated_codes) + 1)]
        rng.shuffle(weights)
        make_weights[make] = weights
    for serial in range(count):
        make = rng.choice(MAKES)
        code = rng.choices(repeated_codes, weights=make_weights[make])[0]
        part = parts_by_id[code.part_id]
        text = _narrative(rng, taxonomy, code, part.component_concept_ids)
        complaints.append(Complaint(
            cmplid=f"ODI{serial + 1:07d}",
            make=make,
            model_year=rng.randrange(2006, 2016),
            component_class=part.component_class,
            cdescr=text.upper(),  # real ODI narratives are upper-cased
            planted_code=code.code,
        ))
    return complaints


def complaints_by_make(complaints: list[Complaint]) -> dict[str, list[Complaint]]:
    """Group complaints per vehicle make."""
    groups: dict[str, list[Complaint]] = {}
    for complaint in complaints:
        groups.setdefault(complaint.make, []).append(complaint)
    return groups


# --------------------------------------------------------------------- #
# FLAT_CMPL exchange format
#
# The real ODI database is distributed as tab-separated FLAT_CMPL files
# (one complaint per line, fixed field order, no header).  We write and
# read the subset of fields our records carry, at their real positions:
# CMPLID (1), MAKETXT (3), YEARTXT (5), COMPDESC (7), CDESCR (20).

#: Number of fields per FLAT_CMPL line (the 2014-era layout).
FLAT_CMPL_FIELDS = 49
_POSITIONS = {"cmplid": 0, "maketxt": 2, "yeartxt": 4, "compdesc": 6,
              "cdescr": 19}


def complaints_to_flat(complaints: list[Complaint]) -> str:
    """Serialize complaints in the tab-separated FLAT_CMPL layout."""
    lines = []
    for complaint in complaints:
        fields = [""] * FLAT_CMPL_FIELDS
        fields[_POSITIONS["cmplid"]] = complaint.cmplid
        fields[_POSITIONS["maketxt"]] = complaint.make
        fields[_POSITIONS["yeartxt"]] = str(complaint.model_year)
        fields[_POSITIONS["compdesc"]] = complaint.component_class.upper()
        fields[_POSITIONS["cdescr"]] = complaint.cdescr.replace("\t", " ")
        lines.append("\t".join(fields))
    return "\n".join(lines) + ("\n" if lines else "")


def complaints_from_flat(text: str) -> list[Complaint]:
    """Parse a FLAT_CMPL dump back into complaint records.

    Unknown/extra fields are ignored; the planted ground-truth code is a
    synthetic-only attribute and comes back empty.

    Raises:
        ValueError: on lines with too few fields.
    """
    complaints: list[Complaint] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        fields = line.split("\t")
        if len(fields) < _POSITIONS["cdescr"] + 1:
            raise ValueError(f"FLAT_CMPL line {line_number}: expected at "
                             f"least {_POSITIONS['cdescr'] + 1} fields, "
                             f"got {len(fields)}")
        year_text = fields[_POSITIONS["yeartxt"]]
        complaints.append(Complaint(
            cmplid=fields[_POSITIONS["cmplid"]],
            make=fields[_POSITIONS["maketxt"]],
            model_year=int(year_text) if year_text.isdigit() else 0,
            component_class=fields[_POSITIONS["compdesc"]].lower(),
            cdescr=fields[_POSITIONS["cdescr"]],
            planted_code="",
        ))
    return complaints
