"""Relational persistence of bundles and complaints (§4.5.1).

The paper stores "raw data from the industrial source as well as from the
NHTSA ODI source" in relational databases; this module maps the dataclasses
onto :mod:`repro.relstore` tables:

* ``bundles``  — one row per data bundle (structured fields),
* ``reports``  — one row per textual report, keyed by bundle reference,
* ``complaints`` — one row per ODI complaint.
"""

from __future__ import annotations

from typing import Iterable

from ..relstore import Column, ColumnType, Database, Schema, col
from .bundle import DataBundle, Report, ReportSource
from .nhtsa import Complaint

BUNDLE_SCHEMA = Schema.build(
    [
        Column("ref_no", ColumnType.TEXT, nullable=False),
        Column("part_id", ColumnType.TEXT, nullable=False),
        Column("article_code", ColumnType.TEXT, nullable=False),
        ("error_code", ColumnType.TEXT),
        ("responsibility_code", ColumnType.TEXT),
        ("part_description", ColumnType.TEXT),
        ("error_description", ColumnType.TEXT),
    ],
    primary_key="ref_no",
)

REPORT_SCHEMA = Schema.build(
    [
        Column("ref_no", ColumnType.TEXT, nullable=False),
        Column("source", ColumnType.TEXT, nullable=False),
        Column("text", ColumnType.TEXT, nullable=False),
        ("language", ColumnType.TEXT),
    ],
)

COMPLAINT_SCHEMA = Schema.build(
    [
        Column("cmplid", ColumnType.TEXT, nullable=False),
        Column("make", ColumnType.TEXT, nullable=False),
        ("model_year", ColumnType.INTEGER),
        ("component_class", ColumnType.TEXT),
        Column("cdescr", ColumnType.TEXT, nullable=False),
        ("planted_code", ColumnType.TEXT),
    ],
    primary_key="cmplid",
)


def create_raw_tables(database: Database) -> None:
    """Create (if needed) and index the raw-data tables."""
    if not database.has_table("bundles"):
        bundles = database.create_table("bundles", BUNDLE_SCHEMA)
        bundles.create_index("ix_bundles_part", "part_id")
        bundles.create_index("ix_bundles_code", "error_code")
    if not database.has_table("reports"):
        reports = database.create_table("reports", REPORT_SCHEMA)
        reports.create_index("ix_reports_ref", "ref_no")
    if not database.has_table("complaints"):
        complaints = database.create_table("complaints", COMPLAINT_SCHEMA)
        complaints.create_index("ix_complaints_make", "make")


def store_bundles(database: Database, bundles: Iterable[DataBundle]) -> int:
    """Persist *bundles* (and their reports); returns the bundle count."""
    create_raw_tables(database)
    bundle_table = database.table("bundles")
    report_table = database.table("reports")
    count = 0
    for bundle in bundles:
        bundle_table.insert({
            "ref_no": bundle.ref_no,
            "part_id": bundle.part_id,
            "article_code": bundle.article_code,
            "error_code": bundle.error_code,
            "responsibility_code": bundle.responsibility_code,
            "part_description": bundle.part_description,
            "error_description": bundle.error_description,
        })
        for report in bundle.reports:
            report_table.insert({
                "ref_no": bundle.ref_no,
                "source": report.source.value,
                "text": report.text,
                "language": report.language,
            })
        count += 1
    return count


def load_bundles(database: Database) -> list[DataBundle]:
    """Rebuild :class:`DataBundle` objects from the raw tables."""
    reports_by_ref: dict[str, list[Report]] = {}
    for row in database.table("reports").scan():
        reports_by_ref.setdefault(row["ref_no"], []).append(
            Report(ReportSource.parse(row["source"]), row["text"],
                   row["language"] or "unknown"))
    order = {source: position for position, source in enumerate(ReportSource)}
    bundles = []
    for row in database.table("bundles").scan():
        reports = sorted(reports_by_ref.get(row["ref_no"], ()),
                         key=lambda report: order[report.source])
        bundles.append(DataBundle(
            ref_no=row["ref_no"],
            part_id=row["part_id"],
            article_code=row["article_code"],
            error_code=row["error_code"],
            responsibility_code=row["responsibility_code"],
            reports=reports,
            part_description=row["part_description"] or "",
            error_description=row["error_description"] or "",
        ))
    bundles.sort(key=lambda bundle: bundle.ref_no)
    return bundles


def load_bundle(database: Database, ref_no: str) -> DataBundle | None:
    """Load one bundle by reference number, or None."""
    row = database.table("bundles").select_one(col("ref_no") == ref_no)
    if row is None:
        return None
    order = {source: position for position, source in enumerate(ReportSource)}
    reports = sorted(
        (Report(ReportSource.parse(r["source"]), r["text"],
                r["language"] or "unknown")
         for r in database.table("reports").select(col("ref_no") == ref_no)),
        key=lambda report: order[report.source])
    return DataBundle(
        ref_no=row["ref_no"], part_id=row["part_id"],
        article_code=row["article_code"], error_code=row["error_code"],
        responsibility_code=row["responsibility_code"], reports=reports,
        part_description=row["part_description"] or "",
        error_description=row["error_description"] or "")


def store_complaints(database: Database, complaints: Iterable[Complaint]) -> int:
    """Persist ODI complaints; returns the count."""
    create_raw_tables(database)
    table = database.table("complaints")
    count = 0
    for complaint in complaints:
        table.insert({
            "cmplid": complaint.cmplid,
            "make": complaint.make,
            "model_year": complaint.model_year,
            "component_class": complaint.component_class,
            "cdescr": complaint.cdescr,
            "planted_code": complaint.planted_code,
        })
        count += 1
    return count


def load_complaints(database: Database, make: str | None = None) -> list[Complaint]:
    """Load complaints, optionally restricted to one vehicle make."""
    predicate = col("make") == make if make is not None else None
    table = database.table("complaints")
    rows = table.select(predicate) if predicate is not None else list(table.scan())
    complaints = [Complaint(cmplid=row["cmplid"], make=row["make"],
                            model_year=row["model_year"],
                            component_class=row["component_class"],
                            cdescr=row["cdescr"],
                            planted_code=row["planted_code"])
                  for row in rows]
    complaints.sort(key=lambda complaint: complaint.cmplid)
    return complaints
