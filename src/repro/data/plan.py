"""Corpus planner: the statistical skeleton of the synthetic OEM corpus.

The original corpus is proprietary; §3.2 publishes its statistics, and the
planner reproduces them *exactly* for the default parameters:

* 7,500 data bundles across 3 component classes and 31 part IDs,
* 831 distinct article codes,
* 1,271 distinct error codes, 718 of which occur exactly once,
* hence 553 classes / 6,782 bundles for the experiments,
* at most 146 distinct error codes for one part ID,
* more than 10 distinct error codes for 25 of the 31 part IDs.

Beyond the counts, the planner fixes the *semantics* that the text
generator renders:

* each part ID owns a set of component concepts from the taxonomy,
* error codes are grouped into clusters sharing a symptom-concept
  signature — bag-of-concepts features cannot separate codes within a
  cluster, which is exactly why the paper's bag-of-words variant wins at
  small k (§5.2.2),
* each error code additionally owns code-specific jargon tokens that are
  *not* taxonomy concepts — the signal only bag-of-words can use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..taxonomy.model import Category, Taxonomy
from ..taxonomy.vocabulary import JARGON_TOKENS


@dataclass(frozen=True)
class CodePlan:
    """Plan for one error code."""

    code: str
    part_id: str
    multiplicity: int
    group_id: str
    symptom_concept_ids: tuple[str, ...]
    jargon: tuple[str, ...]

    @property
    def is_singleton(self) -> bool:
        """Whether the code occurs exactly once in the corpus."""
        return self.multiplicity == 1


@dataclass
class PartPlan:
    """Plan for one part ID."""

    part_id: str
    component_class: str
    base_concept_id: str
    component_concept_ids: tuple[str, ...]
    article_codes: tuple[str, ...]
    bundle_count: int
    codes: list[CodePlan] = field(default_factory=list)

    @property
    def distinct_code_count(self) -> int:
        """Distinct error codes observed for this part (incl. singletons)."""
        return len(self.codes)

    @property
    def repeated_codes(self) -> list[CodePlan]:
        """Codes with multiplicity >= 2 (the experiment classes)."""
        return [code for code in self.codes if not code.is_singleton]


@dataclass
class CorpusPlan:
    """The full corpus skeleton."""

    parts: list[PartPlan]
    component_classes: tuple[str, ...]
    seed: int

    # ------------------------------------------------------------------ #
    # aggregate statistics (§3.2)

    @property
    def bundle_count(self) -> int:
        """Total data bundles (7,500 in the paper)."""
        return sum(part.bundle_count for part in self.parts)

    @property
    def part_id_count(self) -> int:
        """Distinct part IDs (31)."""
        return len(self.parts)

    @property
    def article_code_count(self) -> int:
        """Distinct article codes (831)."""
        return sum(len(part.article_codes) for part in self.parts)

    @property
    def distinct_error_codes(self) -> int:
        """Distinct error codes (1,271)."""
        return sum(part.distinct_code_count for part in self.parts)

    @property
    def singleton_error_codes(self) -> int:
        """Codes occurring exactly once (718)."""
        return sum(1 for part in self.parts for code in part.codes
                   if code.is_singleton)

    @property
    def experiment_classes(self) -> int:
        """Error codes appearing more than once (553 in the paper)."""
        return self.distinct_error_codes - self.singleton_error_codes

    @property
    def experiment_bundles(self) -> int:
        """Bundles whose code appears more than once (6,782 in the paper)."""
        return sum(code.multiplicity for part in self.parts
                   for code in part.codes if not code.is_singleton)

    @property
    def max_codes_per_part(self) -> int:
        return max(part.distinct_code_count for part in self.parts)

    def parts_with_more_than(self, threshold: int) -> int:
        """Number of part IDs with more than *threshold* distinct codes."""
        return sum(1 for part in self.parts
                   if part.distinct_code_count > threshold)

    def all_codes(self) -> list[CodePlan]:
        """Every planned error code across all parts."""
        return [code for part in self.parts for code in part.codes]


# --------------------------------------------------------------------- #
# helper allocation routines


def _split_total(total: int, weights: list[float], minimum: int,
                 rng: random.Random) -> list[int]:
    """Split *total* into len(weights) integers >= minimum, ~ proportional."""
    count = len(weights)
    if total < minimum * count:
        raise ValueError(f"cannot split {total} into {count} parts >= {minimum}")
    weight_sum = sum(weights)
    shares = [max(minimum, int(total * weight / weight_sum)) for weight in weights]
    # Repair rounding drift deterministically.
    drift = total - sum(shares)
    order = sorted(range(count), key=lambda i: -weights[i])
    index = 0
    while drift != 0:
        target = order[index % count]
        if drift > 0:
            shares[target] += 1
            drift -= 1
        elif shares[target] > minimum:
            shares[target] -= 1
            drift += 1
        index += 1
    return shares


def _zipf_multiplicities(total: int, count: int, exponent: float,
                         minimum: int) -> list[int]:
    """Distribute *total* over *count* codes, Zipf-like, each >= minimum.

    The first (most frequent) code receives the largest share; this is what
    drives the code-frequency baseline's accuracy@1 (§5.1).
    """
    if total < minimum * count:
        raise ValueError(f"cannot give {count} codes {minimum}+ each from {total}")
    weights = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    weight_sum = sum(weights)
    shares = [max(minimum, int(round(total * weight / weight_sum)))
              for weight in weights]
    drift = total - sum(shares)
    index = 0
    while drift != 0:
        if drift > 0:
            shares[index % count] += 1
            drift -= 1
        elif shares[index % count] > minimum:
            shares[index % count] -= 1
            drift += 1
        index += 1
    shares.sort(reverse=True)
    return shares


# --------------------------------------------------------------------- #
# the planner


#: Default corpus parameters — the paper's published statistics.
DEFAULT_PARAMETERS = {
    "bundles": 7500,
    "part_ids": 31,
    "article_codes": 831,
    "distinct_codes": 1271,
    "singleton_codes": 718,
    "max_codes_per_part": 146,
    "parts_over_10_codes": 25,
    "zipf_exponent": 1.2,
    "max_repeated_codes_per_part": 23,
    "cluster_sizes": (1, 1, 1, 2, 2, 3),
    "signature_collision": 0.45,
}


def plan_corpus(taxonomy: Taxonomy, seed: int = 42,
                parameters: dict | None = None) -> CorpusPlan:
    """Build the corpus skeleton.

    Args:
        taxonomy: the automotive taxonomy; component and symptom leaves are
            drawn from it.
        seed: RNG seed; the default plan reproduces §3.2 exactly.
        parameters: overrides for :data:`DEFAULT_PARAMETERS` (used by tests
            and by scaled-down benchmark runs).
    """
    config = dict(DEFAULT_PARAMETERS)
    if parameters:
        config.update(parameters)
    rng = random.Random(seed)

    component_classes = ("electrics", "comfort", "powertrain")
    has_children = {concept.parent_id for concept in taxonomy
                    if concept.parent_id is not None}
    symptom_leaves = [concept.concept_id
                      for concept in taxonomy.concepts(Category.SYMPTOM)
                      if concept.parent_id is not None
                      and concept.concept_id not in has_children]
    component_leaves = [concept for concept in taxonomy.concepts(Category.COMPONENT)
                        if concept.parent_id is not None
                        and concept.concept_id not in has_children]
    if len(symptom_leaves) < 50 or len(component_leaves) < 50:
        raise ValueError("taxonomy too small to plan a corpus from")

    part_count = config["part_ids"]

    # --- bundles per part: skewed, deterministic -------------------------
    part_weights = [1.0 / (rank ** 0.55) for rank in range(1, part_count + 1)]
    bundle_counts = _split_total(config["bundles"], part_weights, 60, rng)

    # --- article codes per part ------------------------------------------
    article_counts = _split_total(config["article_codes"], part_weights, 5, rng)

    # --- distinct repeated codes per part (sums to 553) -------------------
    repeated_total = config["distinct_codes"] - config["singleton_codes"]
    cap = config["max_repeated_codes_per_part"]
    repeated_counts = _split_total(repeated_total, part_weights, 6, rng)
    # clamp to the cap, pushing overflow to smaller parts
    overflow = 0
    for index, value in enumerate(repeated_counts):
        if value > cap:
            overflow += value - cap
            repeated_counts[index] = cap
    index = part_count - 1
    while overflow > 0:
        if repeated_counts[index] < cap:
            repeated_counts[index] += 1
            overflow -= 1
        index = index - 1 if index > 0 else part_count - 1

    # --- singleton codes per part (sums to 718) ---------------------------
    # The six smallest parts stay at <= 10 distinct codes overall; the
    # largest part is pushed to exactly `max_codes_per_part` distinct codes.
    small_parts = set(range(part_count - (part_count - config["parts_over_10_codes"]),
                            part_count))
    singleton_counts = [0] * part_count
    singleton_counts[0] = config["max_codes_per_part"] - repeated_counts[0]
    remaining = config["singleton_codes"] - singleton_counts[0]
    # small parts get at most enough singletons to stay <= 10 distinct
    for index in sorted(small_parts):
        repeated_counts[index] = min(repeated_counts[index], 8)
        budget = 10 - repeated_counts[index]
        take = min(budget, 2)
        singleton_counts[index] = take
        remaining -= take
    middle = [index for index in range(1, part_count) if index not in small_parts]
    weights = [part_weights[index] for index in middle]
    middle_shares = _split_total(remaining, weights, 3, rng)
    for position, index in enumerate(middle):
        singleton_counts[index] = middle_shares[position]
    # keep middle parts above 10 distinct codes
    for index in middle:
        if repeated_counts[index] + singleton_counts[index] <= 10:
            singleton_counts[index] += 11 - (repeated_counts[index]
                                             + singleton_counts[index])
            singleton_counts[middle[0]] -= (11 - repeated_counts[index]
                                            - singleton_counts[index])

    # Fix the repeated-count total after the small-part clamping above.
    repeated_drift = repeated_total - sum(repeated_counts)
    index = 1
    while repeated_drift != 0:
        target = index % part_count
        if target not in small_parts:
            if repeated_drift > 0 and repeated_counts[target] < cap:
                repeated_counts[target] += 1
                repeated_drift -= 1
            elif repeated_drift < 0 and repeated_counts[target] > 6:
                repeated_counts[target] -= 1
                repeated_drift += 1
        index += 1

    singleton_drift = config["singleton_codes"] - sum(singleton_counts)
    index = 1
    while singleton_drift != 0:
        target = index % part_count
        if target not in small_parts and target != 0:
            if singleton_drift > 0:
                singleton_counts[target] += 1
                singleton_drift -= 1
            elif singleton_counts[target] > 3:
                singleton_counts[target] -= 1
                singleton_drift += 1
        index += 1

    # --- build the parts ---------------------------------------------------
    parts: list[PartPlan] = []
    article_cursor = 1000
    code_cursor = 1000
    used_jargon = set()

    base_pool = rng.sample(component_leaves, part_count)
    for index in range(part_count):
        base = base_pool[index]
        siblings = [concept.concept_id for concept in
                    taxonomy.children(base.parent_id or base.concept_id)]
        related = [base.concept_id] + [cid for cid in siblings
                                       if cid != base.concept_id][:3]
        extra = rng.sample([c.concept_id for c in component_leaves], 2)
        component_ids = tuple(dict.fromkeys(related + extra))[:5]

        articles = tuple(f"A{article_cursor + offset:05d}"
                         for offset in range(article_counts[index]))
        article_cursor += article_counts[index]

        part = PartPlan(
            part_id=f"P{index + 1:02d}",
            component_class=component_classes[index % len(component_classes)],
            base_concept_id=base.concept_id,
            component_concept_ids=component_ids,
            article_codes=articles,
            bundle_count=bundle_counts[index],
        )

        # --- error codes for this part -----------------------------------
        repeated = repeated_counts[index]
        singles = singleton_counts[index]
        instances = part.bundle_count - singles
        multiplicities = _zipf_multiplicities(instances, repeated,
                                              config["zipf_exponent"], 2)
        # Error-code numbers carry no frequency information in a real
        # coding scheme, so decouple the two.
        rng.shuffle(multiplicities)

        # cluster the repeated codes into symptom-signature groups
        cluster_sizes = list(config["cluster_sizes"])
        assignments: list[int] = []  # cluster index per code
        cluster_index = 0
        position = 0
        while position < repeated:
            size = rng.choice(cluster_sizes)
            size = min(size, repeated - position)
            assignments.extend([cluster_index] * size)
            cluster_index += 1
            position += size
        cluster_count = cluster_index

        part_symptoms = rng.sample(symptom_leaves, min(cluster_count * 2,
                                                       len(symptom_leaves)))
        cluster_signatures: list[tuple[str, ...]] = []
        for cluster in range(cluster_count):
            primary = part_symptoms[(cluster * 2) % len(part_symptoms)]
            if cluster_signatures and rng.random() < config["signature_collision"]:
                # The taxonomy is coarser than the error-code scheme: some
                # neighbouring clusters share their primary symptom concept,
                # so bag-of-concepts features cannot fully separate them
                # (§5.2.2: the concepts "do not represent ultimately
                # accurate features").
                primary = cluster_signatures[-1][0]
            secondary = part_symptoms[(cluster * 2 + 1) % len(part_symptoms)]
            signature = (primary, secondary) if rng.random() < 0.6 else (primary,)
            cluster_signatures.append(signature)

        for code_rank in range(repeated):
            code_name = f"E{code_cursor:04d}"
            code_cursor += 1
            unique = (f"qx{code_cursor:04d}", f"vz{code_cursor + 7000:04d}",
                      f"fb{code_cursor + 3000:04d}", f"mp{code_cursor + 5000:04d}")
            shared = rng.choice(JARGON_TOKENS)
            used_jargon.add(shared)
            part.codes.append(CodePlan(
                code=code_name,
                part_id=part.part_id,
                multiplicity=multiplicities[code_rank],
                group_id=f"{part.part_id}-G{assignments[code_rank]:02d}",
                symptom_concept_ids=cluster_signatures[assignments[code_rank]],
                jargon=unique + (shared,),
            ))

        for singleton_rank in range(singles):
            code_name = f"E{code_cursor:04d}"
            code_cursor += 1
            cluster = singleton_rank % max(cluster_count, 1)
            signature = (cluster_signatures[cluster]
                         if cluster_signatures else (rng.choice(symptom_leaves),))
            part.codes.append(CodePlan(
                code=code_name,
                part_id=part.part_id,
                multiplicity=1,
                group_id=f"{part.part_id}-G{cluster:02d}",
                symptom_concept_ids=signature,
                jargon=(f"qx{code_cursor:04d}", f"vz{code_cursor + 7000:04d}",
                        f"fb{code_cursor + 3000:04d}", f"mp{code_cursor + 5000:04d}",
                        rng.choice(JARGON_TOKENS)),
            ))

        parts.append(part)

    plan = CorpusPlan(parts=parts, component_classes=component_classes,
                      seed=seed)
    _validate(plan, config)
    return plan


def _validate(plan: CorpusPlan, config: dict) -> None:
    """Assert the plan reproduces the configured statistics."""
    problems = []
    if plan.bundle_count != config["bundles"]:
        problems.append(f"bundles {plan.bundle_count} != {config['bundles']}")
    if plan.article_code_count != config["article_codes"]:
        problems.append(f"articles {plan.article_code_count} != {config['article_codes']}")
    if plan.distinct_error_codes != config["distinct_codes"]:
        problems.append(f"codes {plan.distinct_error_codes} != {config['distinct_codes']}")
    if plan.singleton_error_codes != config["singleton_codes"]:
        problems.append(f"singletons {plan.singleton_error_codes} != {config['singleton_codes']}")
    for part in plan.parts:
        realized = sum(code.multiplicity for code in part.codes)
        if realized != part.bundle_count:
            problems.append(f"{part.part_id}: {realized} instances != "
                            f"{part.bundle_count} bundles")
    if problems:
        raise ValueError("invalid corpus plan: " + "; ".join(problems))
