"""The synthetic OEM warranty corpus generator.

Substitutes the proprietary Daimler evaluation-tool extract (§3.2) with a
seeded generator whose output reproduces every published corpus statistic
(see :mod:`repro.data.plan`) and the qualitative data properties the
experiments rely on (see :mod:`repro.data.textgen`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from ..taxonomy.builder import build_taxonomy
from ..taxonomy.model import ENGLISH, GERMAN, Taxonomy
from .bundle import DataBundle, Report, ReportSource
from .plan import CorpusPlan, plan_corpus
from .textgen import (RenderContext, pick_language, render_error_description,
                      render_final_report, render_initial_report,
                      render_mechanic_report, render_part_description,
                      render_supplier_report)


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs of the corpus generator.

    The defaults reproduce the paper's setting; tests and ablations override
    individual fields.
    """

    seed: int = 42
    initial_report_probability: float = 0.35
    mechanic_german_probability: float = 0.45
    mechanic_true_symptom_probability: float = 0.30
    mechanic_wrong_symptom_probability: float = 0.20
    supplier_symptom_probability: float = 0.95
    supplier_jargon_probability: float = 0.95
    supplier_signature_dropout: float = 0.13
    final_jargon_probability: float = 0.90
    responsibility_codes: tuple[str, ...] = ("S1", "S2", "O1", "N0")
    responsibility_weights: tuple[float, ...] = (0.45, 0.20, 0.20, 0.15)


@dataclass
class Corpus:
    """The generated corpus plus its plan and taxonomy."""

    bundles: list[DataBundle]
    plan: CorpusPlan
    taxonomy: Taxonomy
    config: GeneratorConfig = field(default_factory=GeneratorConfig)

    def experiment_bundles(self) -> list[DataBundle]:
        """Bundles whose error code appears more than once (§5.1: 6,782)."""
        counts: dict[str, int] = {}
        for bundle in self.bundles:
            counts[bundle.error_code] = counts.get(bundle.error_code, 0) + 1
        return [bundle for bundle in self.bundles
                if counts[bundle.error_code] > 1]


class _SupplierPool:
    """Per-part suppliers with stable language preferences.

    A part is manufactured by one supplier, and that supplier's QA
    department writes its reports in one working language — so the supplier
    report language is near-constant per part ID (with a small share of
    reports delegated to a differently-located site).
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._preference: dict[str, float] = {}

    def german_probability(self, part_id: str) -> float:
        preference = self._preference.get(part_id)
        if preference is None:
            preference = self._rng.choice((0.12, 0.88))
            self._preference[part_id] = preference
        return preference


def generate_corpus(taxonomy: Taxonomy | None = None,
                    plan: CorpusPlan | None = None,
                    config: GeneratorConfig | None = None) -> Corpus:
    """Generate the full synthetic corpus.

    Args:
        taxonomy: the automotive taxonomy; built with the default seed when
            omitted.
        plan: corpus skeleton; planned from the taxonomy when omitted.
        config: generator knobs (see :class:`GeneratorConfig`).
    """
    config = config or GeneratorConfig()
    taxonomy = taxonomy or build_taxonomy()
    plan = plan or plan_corpus(taxonomy, seed=config.seed)
    rng = random.Random(config.seed * 7919 + 13)
    suppliers = _SupplierPool(rng)

    bundles: list[DataBundle] = []
    serial = 1
    for part in plan.parts:
        for code in part.codes:
            for _ in range(code.multiplicity):
                context = RenderContext(part=part, code=code,
                                        taxonomy=taxonomy, rng=rng)
                reports: list[Report] = []
                mechanic_language = pick_language(
                    rng, config.mechanic_german_probability)
                reports.append(render_mechanic_report(
                    context, mechanic_language,
                    true_symptom_probability=config.mechanic_true_symptom_probability,
                    wrong_symptom_probability=config.mechanic_wrong_symptom_probability))
                if rng.random() < config.initial_report_probability:
                    initial_language = GERMAN if rng.random() < 0.7 else ENGLISH
                    reports.append(render_initial_report(context, initial_language))
                supplier_language = (GERMAN if rng.random()
                                     < suppliers.german_probability(part.part_id)
                                     else ENGLISH)
                reports.append(render_supplier_report(
                    context, supplier_language,
                    symptom_probability=config.supplier_symptom_probability,
                    jargon_probability=config.supplier_jargon_probability,
                    signature_dropout=config.supplier_signature_dropout))
                # the expert summarizes in the supplier report's language
                final_language = supplier_language
                reports.append(render_final_report(
                    context, final_language,
                    jargon_probability=config.final_jargon_probability))

                bundle = DataBundle(
                    ref_no=f"R{serial:07d}",
                    part_id=part.part_id,
                    article_code=rng.choice(part.article_codes),
                    error_code=code.code,
                    responsibility_code=rng.choices(
                        config.responsibility_codes,
                        weights=config.responsibility_weights)[0],
                    reports=reports,
                    part_description=render_part_description(context),
                    error_description=render_error_description(context),
                )
                bundles.append(bundle)
                serial += 1
    rng.shuffle(bundles)
    return Corpus(bundles=bundles, plan=plan, taxonomy=taxonomy, config=config)


def corpus_statistics(bundles: Iterable[DataBundle]) -> dict[str, float | int]:
    """Compute the §3.2 statistics table from a bundle list."""
    bundles = list(bundles)
    code_counts: dict[str, int] = {}
    part_ids: set[str] = set()
    article_codes: set[str] = set()
    codes_per_part: dict[str, set[str]] = {}
    for bundle in bundles:
        part_ids.add(bundle.part_id)
        article_codes.add(bundle.article_code)
        code_counts[bundle.error_code] = code_counts.get(bundle.error_code, 0) + 1
        codes_per_part.setdefault(bundle.part_id, set()).add(bundle.error_code)
    singletons = sum(1 for count in code_counts.values() if count == 1)
    experiment_bundles = sum(count for count in code_counts.values() if count > 1)
    word_counts = [bundle.word_count() for bundle in bundles]
    return {
        "bundles": len(bundles),
        "part_ids": len(part_ids),
        "article_codes": len(article_codes),
        "distinct_error_codes": len(code_counts),
        "singleton_error_codes": singletons,
        "experiment_classes": len(code_counts) - singletons,
        "experiment_bundles": experiment_bundles,
        "max_codes_per_part": max(len(codes) for codes in codes_per_part.values()),
        "parts_over_10_codes": sum(1 for codes in codes_per_part.values()
                                   if len(codes) > 10),
        "mean_words_per_bundle": (sum(word_counts) / len(word_counts)
                                  if word_counts else 0.0),
    }
