"""The QUEST service layer (§4.5.4).

Backs the web UI: for a data bundle awaiting classification, the expert is
"first presented with a selection of the 10 most likely error codes in
descending order of likelihood"; if the correct code is not among them,
"they can access the list of all error codes available for the part ID",
as in the OEM's original software.  Power users can define new error
codes; every final assignment is recorded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..classify.baselines import CodeFrequencyBaseline
from ..classify.knn import RankedKnnClassifier
from ..classify.results import (Recommendation, load_recommendation,
                                store_recommendations)
from ..data.bundle import DataBundle
from ..data.schema import create_raw_tables, load_bundle, store_bundles
from ..relstore import Column, ColumnType, Database, Schema, col
from ..triage import (DEFAULT_REVIEW_THRESHOLD, OVERRIDE_CONFIDENCE,
                      Confidence, OverrideStore, ReviewQueue,
                      override_recommendation, score_confidence)
from .errors import DegradedServiceError, QuestError, UnknownBundleError
from .users import PermissionError_, User

#: "the user is first presented with a selection of the 10 most likely
#: error codes" (§4.5.4).
SUGGESTION_COUNT = 10

ASSIGNMENT_SCHEMA = Schema.build(
    [
        Column("ref_no", ColumnType.TEXT, nullable=False),
        Column("error_code", ColumnType.TEXT, nullable=False),
        Column("assigned_by", ColumnType.TEXT, nullable=False),
        Column("from_suggestions", ColumnType.BOOLEAN, nullable=False),
        Column("sequence", ColumnType.INTEGER, nullable=False),
        # True on every history row except the bundle's current decision.
        Column("superseded", ColumnType.BOOLEAN, nullable=False),
    ],
)

CUSTOM_CODE_SCHEMA = Schema.build(
    [
        Column("error_code", ColumnType.TEXT, nullable=False),
        Column("part_id", ColumnType.TEXT, nullable=False),
        Column("description", ColumnType.TEXT, nullable=False),
        Column("created_by", ColumnType.TEXT, nullable=False),
    ],
    primary_key="error_code",
)


@dataclass(frozen=True)
class SuggestionView:
    """What the assignment screen shows for one bundle."""

    bundle: DataBundle
    suggestions: Recommendation
    all_codes: list[str]
    #: None for a normal classification; otherwise which fallback produced
    #: the suggestions ("stored", "fallback" or "frequency") after the
    #: primary classifier failed.
    degraded: str | None = None
    #: Calibrated confidence for the ranked list (see repro.triage).
    confidence: Confidence | None = None
    #: ``"classifier"`` for a computed ranked list; ``"override"`` when an
    #: engineer's pin answered instead of the classifier.
    source: str = "classifier"

    @property
    def top10(self) -> list[str]:
        """The shortlist shown first."""
        return [scored.error_code
                for scored in self.suggestions.top(SUGGESTION_COUNT)]


class QuestService:
    """Application services over the raw data, classifier and baseline."""

    def __init__(self, database: Database,
                 classifier: RankedKnnClassifier,
                 frequency_baseline: CodeFrequencyBaseline,
                 fallback_classifier: RankedKnnClassifier | None = None,
                 review_threshold: float = DEFAULT_REVIEW_THRESHOLD) -> None:
        self.database = database
        self.classifier = classifier
        self.frequency_baseline = frequency_baseline
        #: Optional secondary classifier for degraded mode — typically a
        #: BoW (words-mode) classifier that needs no concept annotator, so
        #: it keeps working when the taxonomy/annotation path fails.
        self.fallback_classifier = fallback_classifier
        create_raw_tables(database)
        self._assignments = database.create_table(
            "assignments", ASSIGNMENT_SCHEMA, if_not_exists=True)
        if "ix_assign_ref" not in self._assignments.indexes:
            self._assignments.create_index("ix_assign_ref", "ref_no")
        self._custom_codes = database.create_table(
            "custom_codes", CUSTOM_CODE_SCHEMA, if_not_exists=True)
        self._sequence = itertools.count(1)
        #: Persisted suggests scoring under this enter the review queue.
        self.review_threshold = review_threshold
        #: Engineer pins; they always win over the classifier.
        self.overrides = OverrideStore(database)
        #: Low-confidence suggestions awaiting a human decision.
        self.review_queue = ReviewQueue(database)

    # ------------------------------------------------------------------ #
    # intake

    def register_bundles(self, bundles: list[DataBundle]) -> int:
        """Store incoming bundles in the raw tables."""
        return store_bundles(self.database, bundles)

    def bundle(self, ref_no: str) -> DataBundle | None:
        """Load one bundle by reference number."""
        return load_bundle(self.database, ref_no)

    # ------------------------------------------------------------------ #
    # suggestions (§4.4 step 3c + §4.5.4)

    def suggest(self, ref_no: str, *, persist: bool = True,
                on_error: str = "degrade",
                with_confidence: bool = True) -> SuggestionView:
        """Classify a bundle and build the assignment screen's data.

        An active engineer override short-circuits the classifier
        entirely: the pinned code comes back as the sole suggestion with
        ``source="override"`` and full confidence, and nothing is
        persisted or enqueued — a pin is never clobbered by re-runs.

        Args:
            ref_no: the bundle's reference number.
            persist: store the freshly computed recommendation (and
                enqueue it for review when its confidence falls under
                ``review_threshold``).
            on_error: ``"degrade"`` (default) falls back when the primary
                classifier raises — first to a previously stored
                suggestion, then to the BoW ``fallback_classifier`` (if
                configured), then to the code-frequency baseline — and
                labels the view's ``degraded`` field accordingly.
                ``"raise"`` propagates the classifier's error.
            with_confidence: score the ranked list's confidence (skipped
                only by callers benchmarking the plain suggest path).

        Raises:
            UnknownBundleError: if the bundle is unknown.
            DegradedServiceError: if the classifier failed and every
                fallback failed too.
        """
        bundle = self.bundle(ref_no)
        if bundle is None:
            raise UnknownBundleError(f"no bundle {ref_no!r}")
        override = self.overrides.active(ref_no)
        if override is not None:
            return SuggestionView(
                bundle=bundle,
                suggestions=override_recommendation(
                    ref_no, bundle.part_id, override["error_code"]),
                all_codes=self.full_code_list(bundle.part_id),
                degraded=None,
                confidence=OVERRIDE_CONFIDENCE if with_confidence else None,
                source="override")
        degraded = None
        try:
            recommendation = self.classifier.classify_bundle(
                bundle.without_label())
        except Exception as exc:
            if on_error == "raise":
                raise
            recommendation, degraded = self._degraded_suggestion(bundle, exc)
        confidence = (score_confidence(recommendation)
                      if with_confidence else None)
        # A degraded answer never overwrites a previously stored (healthy)
        # recommendation.
        if persist and degraded is None:
            store_recommendations(self.database, [recommendation])
            if (confidence is not None
                    and confidence.score < self.review_threshold):
                self.review_queue.enqueue(ref_no, bundle.part_id,
                                          confidence.score)
        return SuggestionView(bundle=bundle, suggestions=recommendation,
                              all_codes=self.full_code_list(bundle.part_id),
                              degraded=degraded, confidence=confidence,
                              source="classifier")

    def _degraded_suggestion(self, bundle: DataBundle,
                             cause: Exception,
                             ) -> tuple[Recommendation, str]:
        """The fallback chain behind degraded :meth:`suggest`."""
        stored = self.stored_suggestion(bundle.ref_no)
        if stored is not None:
            return stored, "stored"
        if self.fallback_classifier is not None:
            try:
                return (self.fallback_classifier.classify_bundle(
                    bundle.without_label()), "fallback")
            except Exception:
                pass  # fall through to the frequency baseline
        try:
            recommendation = self.frequency_baseline.classify_bundle(
                bundle.without_label())
        except Exception as exc:
            raise DegradedServiceError(
                f"classifier failed for {bundle.ref_no!r} ({cause!r}) and "
                f"no fallback succeeded") from exc
        if not recommendation.codes:
            raise DegradedServiceError(
                f"classifier failed for {bundle.ref_no!r} ({cause!r}) and "
                f"no fallback produced any suggestion") from cause
        return recommendation, "frequency"

    def stored_suggestion(self, ref_no: str) -> Recommendation | None:
        """A previously persisted recommendation, if any."""
        return load_recommendation(self.database, ref_no)

    def search_bundles(self, query: str, limit: int = 25) -> list[DataBundle]:
        """Full-text search over report texts (case-insensitive substring).

        The original quality-engineering software lets workers locate
        bundles by report content; this backs the equivalent QUEST screen.
        """
        from ..relstore import Like
        if not query:
            return []
        rows = self.database.table("reports").select(
            Like("text", f"%{query}%"), columns=["ref_no"])
        refs = sorted({row["ref_no"] for row in rows})[:limit]
        bundles = [self.bundle(ref) for ref in refs]
        return [bundle for bundle in bundles if bundle is not None]

    def full_code_list(self, part_id: str) -> list[str]:
        """All error codes available for *part_id* (frequency-sorted),
        including custom codes defined through QUEST."""
        ranked = [scored.error_code
                  for scored in self.frequency_baseline.ranked_codes(part_id)]
        custom = [row["error_code"] for row in self._custom_codes.select(
            col("part_id") == part_id, order_by="error_code")]
        return ranked + [code for code in custom if code not in ranked]

    # ------------------------------------------------------------------ #
    # assignment

    def assign_code(self, actor: User, ref_no: str, error_code: str) -> None:
        """Record the expert's final error-code decision.

        Idempotent: re-assigning the code the bundle already carries (per
        its latest history row) is a no-op — no duplicate history row, no
        double-counted knowledge evidence.  A *different* code appends a
        new history row and marks every earlier row ``superseded``.

        Raises:
            PermissionError_: if *actor* may not assign codes.
            UnknownBundleError: unknown bundle.
            QuestError: a code that is neither known for the part nor a
                custom code, or an inconsistent bundle store (both are
                ``ValueError`` subclasses, as before).
        """
        if not actor.can("assign"):
            raise PermissionError_(f"{actor.name} may not assign error codes")
        bundle = self.bundle(ref_no)
        if bundle is None:
            raise UnknownBundleError(f"no bundle {ref_no!r}")
        available = set(self.full_code_list(bundle.part_id))
        if error_code not in available:
            raise QuestError(f"code {error_code!r} is not available for part "
                             f"{bundle.part_id}")
        history = self.assignment_history(ref_no)
        if history and history[-1]["error_code"] == error_code:
            return  # repeated decision: nothing new to record
        suggestion = self.stored_suggestion(ref_no)
        from_suggestions = bool(
            suggestion and suggestion.hit_at(error_code, SUGGESTION_COUNT))
        bundles = self.database.table("bundles")
        row_id = next((rid for rid in bundles.row_ids()
                       if bundles.get(rid)["ref_no"] == ref_no), None)
        if row_id is None:
            raise QuestError(
                f"bundle {ref_no!r} has reports but no bundles row; "
                f"the raw store is inconsistent")
        previous_code = bundles.get(row_id)["error_code"]
        bundles.update(row_id, {"error_code": error_code})
        index = self._assignments.index_for("ref_no")
        earlier = (index.lookup(ref_no) if index is not None
                   else [rid for rid in self._assignments.row_ids()
                         if self._assignments.get(rid)["ref_no"] == ref_no])
        for rid in earlier:
            if not self._assignments.get(rid)["superseded"]:
                self._assignments.update(rid, {"superseded": True})
        self._assignments.insert({
            "ref_no": ref_no,
            "error_code": error_code,
            "assigned_by": actor.name,
            "from_suggestions": from_suggestions,
            "sequence": next(self._sequence),
            "superseded": False,
        })
        # Feed the decision back into the knowledge base (application phase
        # keeps learning from confirmed assignments).  On a re-assignment
        # the previous decision's evidence is retracted first, so corrected
        # mistakes do not linger as knowledge nodes.
        features = self.classifier.extractor.extract_text(
            bundle.training_text())
        if previous_code is not None and previous_code != error_code:
            self.classifier.knowledge_base.remove_observation(
                bundle.part_id, previous_code, features)
        self.classifier.knowledge_base.add_observation(
            bundle.part_id, error_code, features)

    def assignment_history(self, ref_no: str) -> list[dict]:
        """All recorded assignments for a bundle, oldest first."""
        return self._assignments.select(col("ref_no") == ref_no,
                                        order_by="sequence")

    def suggestion_hit_rate(self) -> float:
        """Share of assignments taken from the top-10 shortlist."""
        rows = list(self._assignments.scan())
        if not rows:
            return 0.0
        return sum(1 for row in rows if row["from_suggestions"]) / len(rows)

    # ------------------------------------------------------------------ #
    # triage: overrides and the review queue

    def apply_override(self, actor: User, ref_no: str, error_code: str,
                       reason: str = "") -> dict:
        """Pin *error_code* to *ref_no*; the pin wins over the classifier.

        Any open review entry for the bundle is resolved as
        ``override`` (forced — a pin is decisive regardless of who holds
        the claim).  Returns the stored override row.

        Raises:
            PermissionError_: if *actor* may not assign codes.
            UnknownBundleError: unknown bundle.
            QuestError: the code is not available for the bundle's part.
        """
        if not actor.can("assign"):
            raise PermissionError_(f"{actor.name} may not override "
                                   f"suggestions")
        bundle = self.bundle(ref_no)
        if bundle is None:
            raise UnknownBundleError(f"no bundle {ref_no!r}")
        available = set(self.full_code_list(bundle.part_id))
        if error_code not in available:
            raise QuestError(f"code {error_code!r} is not available for part "
                             f"{bundle.part_id}")
        record = self.overrides.pin(actor.name, ref_no, error_code, reason)
        if self.review_queue.entry(ref_no) is not None:
            self.review_queue.resolve(actor.name, ref_no, "override",
                                      force=True)
        return record

    def claim_review(self, actor: User, ref_no: str | None = None,
                     ) -> dict | None:
        """Claim a review entry (the weakest pending one by default).

        Raises:
            PermissionError_: if *actor* may not assign codes.
            UnknownBundleError: *ref_no* has no open review entry.
            IntegrityError: the entry is claimed by someone else.
        """
        if not actor.can("assign"):
            raise PermissionError_(f"{actor.name} may not review "
                                   f"suggestions")
        return self.review_queue.claim(actor.name, ref_no)

    def resolve_review(self, actor: User, ref_no: str, resolution: str,
                       error_code: str | None = None,
                       reason: str = "") -> dict:
        """Resolve a review entry; ``override`` also pins *error_code*.

        Raises:
            PermissionError_: if *actor* may not assign codes.
            QuestError: resolution ``override`` without an *error_code*.
            UnknownBundleError / IntegrityError / ValueError: as raised
                by the queue (no open entry / foreign claim / unknown
                resolution).
        """
        if not actor.can("assign"):
            raise PermissionError_(f"{actor.name} may not review "
                                   f"suggestions")
        if resolution == "override":
            if not error_code:
                raise QuestError("resolution 'override' needs an error_code")
            return self.apply_override(actor, ref_no, error_code, reason)
        return self.review_queue.resolve(actor.name, ref_no, resolution)

    def pending_reviews(self, limit: int | None = None) -> list[dict]:
        """Open review entries in drain order (weakest first)."""
        return self.review_queue.pending(limit)

    # ------------------------------------------------------------------ #
    # custom error codes

    def define_error_code(self, actor: User, error_code: str, part_id: str,
                          description: str) -> None:
        """Create a new error code (power users and admins only).

        Raises:
            PermissionError_: if *actor* lacks the capability.
            IntegrityError: if the code already exists.
        """
        if not actor.can("define_codes"):
            raise PermissionError_(f"{actor.name} may not define error codes")
        self._custom_codes.insert({
            "error_code": error_code,
            "part_id": part_id,
            "description": description,
            "created_by": actor.name,
        })

    def custom_codes(self, part_id: str | None = None) -> list[dict]:
        """Custom codes, optionally restricted to one part."""
        predicate = (col("part_id") == part_id) if part_id else None
        if predicate is None:
            return sorted(self._custom_codes.scan(),
                          key=lambda row: row["error_code"])
        return self._custom_codes.select(predicate, order_by="error_code")
