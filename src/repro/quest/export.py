"""Exports for downstream BI tooling.

The comparison screen (§5.4) is one consumer of the classified data;
quality departments also pull the numbers into their own BI stacks.  This
module renders the core artifacts as CSV and JSON: recommendations,
assignment audit trails, and source-comparison distributions.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

from ..classify.results import Recommendation
from ..relstore import Database
from .compare import ComparisonView


def recommendations_to_csv(recommendations: Sequence[Recommendation]) -> str:
    """CSV with one row per (bundle, rank) pair."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["ref_no", "part_id", "rank", "error_code", "score",
                     "support"])
    for recommendation in recommendations:
        for rank, scored in enumerate(recommendation.codes, start=1):
            writer.writerow([recommendation.ref_no, recommendation.part_id,
                             rank, scored.error_code,
                             f"{scored.score:.6f}", scored.support])
    return buffer.getvalue()


def assignments_to_csv(database: Database) -> str:
    """CSV dump of the assignment audit trail."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["sequence", "ref_no", "error_code", "assigned_by",
                     "from_suggestions"])
    if database.has_table("assignments"):
        rows = database.table("assignments").select(order_by="sequence")
        for row in rows:
            writer.writerow([row["sequence"], row["ref_no"],
                             row["error_code"], row["assigned_by"],
                             int(row["from_suggestions"])])
    return buffer.getvalue()


def comparison_to_json(view: ComparisonView) -> str:
    """The Fig. 14 comparison as a JSON document."""
    def encode(distribution):
        return {
            "source": distribution.source,
            "total": distribution.total,
            "slices": [{"error_code": slice_.error_code,
                        "count": slice_.count,
                        "share": round(slice_.share, 6)}
                       for slice_ in distribution.slices()],
        }

    return json.dumps({
        "left": encode(view.left),
        "right": encode(view.right),
        "shared_top_codes": sorted(view.shared_top_codes()),
    }, indent=2, ensure_ascii=False)
