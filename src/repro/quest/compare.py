"""Cross-source error-distribution comparison (§5.4, Fig. 14).

The OEM knowledge base classifies problem reports from a public complaints
source into the *same* error-code schema; QUEST then shows "side-by-side
pie charts showing the distribution of the n most frequent error codes in
both data sources" — competitive business intelligence over brand-specific
weaknesses and shared-supplier issues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..classify.knn import RankedKnnClassifier
from ..data.bundle import DataBundle
from ..data.nhtsa import Complaint
from ..knowledge.extractor import complaint_document


@dataclass(frozen=True)
class Slice:
    """One pie slice: an error code and its share."""

    error_code: str
    count: int
    share: float


@dataclass(frozen=True)
class Distribution:
    """Top-n error codes of one data source, plus the "Other" bucket."""

    source: str
    total: int
    top: tuple[Slice, ...]
    other: Slice

    def slices(self) -> tuple[Slice, ...]:
        """Top slices followed by the Other bucket."""
        return self.top + (self.other,)


@dataclass(frozen=True)
class ComparisonView:
    """The Fig. 14 screen: two distributions side by side."""

    left: Distribution
    right: Distribution

    def shared_top_codes(self) -> set[str]:
        """Codes appearing in both top-n lists (shared-supplier signals)."""
        return ({s.error_code for s in self.left.top}
                & {s.error_code for s in self.right.top})


def distribution_from_codes(source: str, codes: Sequence[str],
                            top_n: int = 3) -> Distribution:
    """Aggregate a code sequence into a top-n distribution.

    Raises:
        ValueError: on an empty code sequence.
    """
    if not codes:
        raise ValueError(f"no codes for source {source!r}")
    counts: dict[str, int] = {}
    for code in codes:
        counts[code] = counts.get(code, 0) + 1
    ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    total = len(codes)
    top = tuple(Slice(code, count, count / total)
                for code, count in ordered[:top_n])
    other_count = total - sum(slice_.count for slice_ in top)
    return Distribution(source=source, total=total, top=top,
                        other=Slice("Other", other_count, other_count / total))


def classify_complaints(classifier: RankedKnnClassifier,
                        complaints: Iterable[Complaint],
                        part_id_of_code: dict[str, str] | None = None,
                        ) -> list[str]:
    """Assign an error code to every complaint using the OEM-trained KB.

    Public complaints carry no OEM part ID; when *part_id_of_code* is not
    given the classifier's unknown-part fallback (all nodes sharing a
    feature) is used, exactly the fully-automatic setting of §5.4 — "there
    will be substantial inaccuracies", which is acceptable for an
    "approximate impression of the distribution of similar errors".
    """
    assigned: list[str] = []
    for complaint in complaints:
        if part_id_of_code is not None:
            part_id = part_id_of_code.get(complaint.planted_code, "unknown")
        else:
            part_id = "unknown-public-source"
        recommendation = classifier.classify_text(
            part_id, complaint_document(complaint), ref_no=complaint.cmplid)
        if recommendation.codes:
            assigned.append(recommendation.codes[0].error_code)
    return assigned


def compare_sources(internal_bundles: Sequence[DataBundle],
                    classifier: RankedKnnClassifier,
                    complaints: Sequence[Complaint],
                    top_n: int = 3,
                    part_id_of_code: dict[str, str] | None = None,
                    ) -> ComparisonView:
    """Build the Fig. 14 comparison: internal codes vs classified public data.

    Raises:
        ValueError: if either side ends up empty.
    """
    internal_codes = [bundle.error_code for bundle in internal_bundles
                      if bundle.error_code is not None]
    public_codes = classify_complaints(classifier, complaints,
                                       part_id_of_code)
    return ComparisonView(
        left=distribution_from_codes("Proprietary Data Set", internal_codes,
                                     top_n),
        right=distribution_from_codes("NHTSA Data", public_codes, top_n),
    )
