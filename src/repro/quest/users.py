"""QUEST user accounts and roles (§4.5.4).

"Users can view the data and assign error codes"; "users with extended
rights can define new error codes right in the QUEST interface"; admins
additionally "maintain users".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..relstore import Column, ColumnType, Database, Schema, col


class Role(enum.Enum):
    """QUEST access levels."""

    VIEWER = "viewer"          # view bundles and comparisons
    EXPERT = "expert"          # + assign error codes
    POWER_EXPERT = "power"     # + define new error codes
    ADMIN = "admin"            # + maintain users

    @classmethod
    def parse(cls, name: str) -> "Role":
        """Return the role named *name* (case-insensitive).

        Raises:
            ValueError: on unknown names.
        """
        try:
            return cls(name.strip().lower())
        except ValueError:
            known = ", ".join(role.value for role in cls)
            raise ValueError(f"unknown role {name!r}; expected one of {known}") from None


#: Capability sets per role.
_CAPABILITIES: dict[Role, frozenset[str]] = {
    Role.VIEWER: frozenset({"view"}),
    Role.EXPERT: frozenset({"view", "assign"}),
    Role.POWER_EXPERT: frozenset({"view", "assign", "define_codes"}),
    Role.ADMIN: frozenset({"view", "assign", "define_codes", "manage_users"}),
}


@dataclass(frozen=True)
class User:
    """One QUEST account."""

    name: str
    role: Role
    display_name: str = ""

    def can(self, capability: str) -> bool:
        """Whether this user's role grants *capability*."""
        return capability in _CAPABILITIES[self.role]


class PermissionError_(Exception):
    """A user attempted an operation their role does not grant."""


USER_SCHEMA = Schema.build(
    [
        Column("name", ColumnType.TEXT, nullable=False),
        Column("role", ColumnType.TEXT, nullable=False),
        ("display_name", ColumnType.TEXT),
    ],
    primary_key="name",
)


class UserStore:
    """Relational user registry."""

    def __init__(self, database: Database | None = None) -> None:
        self._database = database if database is not None else Database("quest")
        self._table = self._database.create_table("users", USER_SCHEMA,
                                                  if_not_exists=True)

    def add(self, user: User) -> None:
        """Register a new account.

        Raises:
            IntegrityError: if the name is taken.
        """
        self._table.insert({"name": user.name, "role": user.role.value,
                            "display_name": user.display_name})

    def get(self, name: str) -> User | None:
        """Look up an account, or None."""
        row = self._table.select_one(col("name") == name)
        if row is None:
            return None
        return User(row["name"], Role.parse(row["role"]),
                    row["display_name"] or "")

    def set_role(self, actor: User, name: str, role: Role) -> None:
        """Change an account's role; requires the ``manage_users`` capability.

        Raises:
            PermissionError_: if *actor* may not manage users.
            ValueError: if the account does not exist.
        """
        if not actor.can("manage_users"):
            raise PermissionError_(f"{actor.name} may not manage users")
        row_id = next((rid for rid in self._table.row_ids()
                       if self._table.get(rid)["name"] == name), None)
        if row_id is None:
            raise ValueError(f"no user {name!r}")
        self._table.update(row_id, {"role": role.value})

    def remove(self, actor: User, name: str) -> None:
        """Delete an account; requires the ``manage_users`` capability.

        Raises:
            PermissionError_: if *actor* may not manage users.
        """
        if not actor.can("manage_users"):
            raise PermissionError_(f"{actor.name} may not manage users")
        self._table.delete(col("name") == name)

    def all_users(self) -> list[User]:
        """Every account, sorted by name."""
        return sorted((User(row["name"], Role.parse(row["role"]),
                            row["display_name"] or "")
                       for row in self._table.scan()),
                      key=lambda user: user.name)
