"""A minimal QUEST web application on the standard library HTTP server.

Substitute for the paper's PrimeFaces/WSO2 stack (§4.5.4): the same
user-visible functions — bundle list, top-10 suggestion screen with
full-list fallback, error-code assignment, custom code creation, user
list, and the cross-source comparison — served as plain HTML, plus a
machine-readable JSON API (``/api/suggest/<ref>``, ``/api/assign``,
``/api/stats``) for programmatic clients.

The transport speaks **HTTP/1.1 with keep-alive**: connections persist
across requests (bounded by a per-connection request cap and an idle
timeout), every response carries an exact ``Content-Length`` — error
pages included — and a draining server answers with ``Connection:
close`` so ``stop()`` converges instead of waiting out idle sockets.
Because a desynchronized connection under keep-alive corrupts the *next*
request, the handler always consumes a POST's declared body (or closes
the connection when the declared length is unusable) before answering.

The handler delegates all logic to the serving gateway
(:class:`~repro.serve.ServeGateway`) and the pure view functions, so it
stays a thin transport layer.  The gateway owns queueing, micro-batching,
deadlines and the store's reader-writer lock; read-only screens take the
gateway's read guard so a concurrent write can never produce a torn
read.  Overload surfaces as HTTP 503 (queue full / shutdown) and 504
(deadline exceeded), both with ``Retry-After``, and the live counters
are served as JSON on ``/stats`` and ``/api/stats``.
"""

from __future__ import annotations

import json
import pickle
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from ..data.schema import load_bundles
from ..relstore.errors import IntegrityError
# Only the leaf errors module at import time: repro.serve.gateway imports
# the quest service layer, so pulling the gateway in here would close an
# import cycle through quest/__init__.  The gateway class itself is
# imported lazily in QuestApp.__init__.
from ..serve.errors import (DeadlineExceededError, GatewayStoppedError,
                            QueueFullError, ReplicaWriteError, ServeError)
from ..triage import part_profiles
from .compare import ComparisonView
from .errors import DegradedServiceError, UnknownBundleError
from .service import SUGGESTION_COUNT, QuestService
from .users import PermissionError_, User, UserStore
from . import views

if TYPE_CHECKING:
    from ..serve.gateway import DrainReport, ServeGateway

#: Upper bound on an accepted POST body.  Longer declared bodies are
#: refused with 413 before reading, so one oversized upload cannot pin a
#: keep-alive handler thread.
MAX_BODY_BYTES = 1 << 20

#: Default cap on requests served over one keep-alive connection; the
#: response that hits the cap carries ``Connection: close``.
MAX_REQUESTS_PER_CONNECTION = 1000

#: Default seconds a keep-alive connection may idle between requests.
KEEPALIVE_IDLE_TIMEOUT = 30.0

#: Once the first byte of a request has arrived, the rest of the request
#: line and headers must arrive within this many seconds.  A socket-level
#: idle timeout alone cannot bound this: every dribbled byte resets the
#: per-``recv`` clock, so a slowloris client sending one byte per second
#: could pin a handler (a whole thread, on the threaded transport)
#: forever — and past the drain grace during ``stop()``.
HEADER_TIMEOUT = 10.0


def _failure_response(exc: Exception) -> tuple[int, str]:
    """Map a service/gateway failure to ``(HTTP status, title)``.

    One mapping for every route — GET and POST, HTML and JSON — so an
    error that the suggestion screen answers with 503 can no longer
    escape an assignment POST as a raw 500 (or a dropped connection).
    """
    if isinstance(exc, PermissionError_):
        return 403, "Forbidden"
    if isinstance(exc, UnknownBundleError):
        return 404, "Not found"
    if isinstance(exc, ReplicaWriteError):
        return 405, "Method not allowed"
    if isinstance(exc, (QueueFullError, GatewayStoppedError)):
        return 503, "Server overloaded"
    if isinstance(exc, DeadlineExceededError):
        return 504, "Deadline exceeded"
    if isinstance(exc, DegradedServiceError):
        return 503, "Service degraded"
    if isinstance(exc, IntegrityError):
        return 409, "Conflict"
    if isinstance(exc, ValueError):  # QuestError subclasses ValueError
        return 400, "Bad request"
    return 500, "Internal error"


def _json_error(title: str, exc: Exception) -> str:
    """The JSON API's error body."""
    return json.dumps({"error": title, "exception": type(exc).__name__,
                       "message": str(exc)}, sort_keys=True)


def _is_json_path(path: str) -> bool:
    """Whether *path* is served as ``application/json``."""
    path = urllib.parse.urlsplit(path).path
    return path == "/stats" or path.startswith("/api/")


class QuestApp:
    """Bundles the gateway, users and (optional) comparison for serving."""

    def __init__(self, service: QuestService, users: UserStore,
                 current_user: User,
                 comparison: ComparisonView | None = None,
                 gateway: "ServeGateway | None" = None,
                 gateway_config=None,
                 replica_of: str | None = None,
                 replicator=None) -> None:
        self.service = service
        self.users = users
        self.current_user = current_user
        self.comparison = comparison
        if gateway is None:
            from ..serve.gateway import ServeGateway
            gateway = ServeGateway(service, gateway_config)
        #: The serving gateway all suggest/assign traffic goes through.
        #: A default one (lazy worker pool) is built when none is given;
        #: *gateway_config* tunes it (e.g. ``worker_mode="process"``)
        #: without the caller having to construct the gateway itself.
        self.gateway = gateway
        #: When set, this app is a **read replica** of the primary at
        #: that URL: every POST is refused with 405 pointing there.
        self.replica_of = replica_of
        #: The replica's :class:`~repro.serve.SnapshotReplicator`, when
        #: one is attached; its counters merge into ``/api/stats``.
        self.replicator = replicator

    def close(self, grace: float | None = None) -> "DrainReport":
        """Drain and stop the gateway; returns its drain report."""
        return self.gateway.stop(grace)

    # ------------------------------------------------------------------ #
    # request-level operations (transport-independent, unit-testable)

    def get(self, path: str) -> tuple[int, str | bytes]:
        """Handle a GET; returns (status, body).  *path* may carry a query
        string (used by /search?q=... and /api/replicate?base=...).
        ``/stats`` and ``/api/...`` return JSON (``/api/replicate`` a
        pickled payload), every other route HTML."""
        parts = urllib.parse.urlsplit(path)
        path, query_string = parts.path, parts.query
        if path == "/" or path == "/bundles":
            # Read-only screens share the store's read lock (the same
            # lock suggest batches and writers take) so a concurrent
            # POST /assign cannot produce a torn bundle list.
            with self.gateway.read_locked():
                bundles = load_bundles(self.service.database)
            return 200, views.render_bundle_list(bundles)
        if path.startswith("/api/"):
            return self._api_get(path, query_string)
        if path.startswith("/bundle/"):
            ref_no = urllib.parse.unquote(path[len("/bundle/"):])
            try:
                view = self.gateway.suggest(ref_no)
            except (ValueError, ServeError) as exc:
                status, title = _failure_response(exc)
                return status, views.render_message(title, str(exc))
            return 200, views.render_suggestions(view)
        if path == "/stats":
            return 200, json.dumps(self._stats_payload(), sort_keys=True)
        if path == "/compare":
            if self.comparison is None:
                return 200, views.render_message(
                    "Error distribution comparison",
                    "No public data source configured.")
            return 200, views.render_comparison(self.comparison)
        if path == "/users":
            return 200, views.render_users(self.users.all_users())
        if path == "/search":
            query = urllib.parse.parse_qs(query_string).get("q", [""])[0]
            with self.gateway.read_locked():
                matches = self.service.search_bundles(query)
            return 200, views.render_bundle_list(matches)
        if path == "/review":
            with self.gateway.read_locked():
                entries = self.service.pending_reviews()
                counts = self.service.review_queue.counts()
            return 200, views.render_review(entries, counts)
        if path == "/profiles":
            with self.gateway.read_locked():
                profiles = part_profiles(self.service.database)
            return 200, views.render_profiles(profiles)
        if path.startswith("/history/"):
            ref_no = urllib.parse.unquote(path[len("/history/"):])
            with self.gateway.read_locked():
                rows = self.service.assignment_history(ref_no)
            return 200, views.render_history(ref_no, rows)
        return 404, views.render_message("Not found", f"no page {path!r}")

    def _stats_payload(self) -> dict:
        """Gateway counters, plus replication state when a replicator is
        attached (``replica_version``/``primary_version``/staleness)."""
        payload = self.gateway.stats_snapshot()
        if self.replicator is not None:
            payload.update(self.replicator.stats_snapshot())
            payload["replica_of"] = self.replica_of
        return payload

    def _api_get(self, path: str,
                 query_string: str = "") -> tuple[int, str | bytes]:
        """The JSON API's GET routes (bodies are JSON on every path,
        except ``/api/replicate`` which answers with a pickled snapshot
        payload for replica polls)."""
        if path == "/api/stats":
            return 200, json.dumps(self._stats_payload(), sort_keys=True)
        if path == "/api/replicate":
            query = urllib.parse.parse_qs(query_string)
            base: int | None = None
            if "base" in query:
                try:
                    base = int(query["base"][0])
                except ValueError as exc:
                    return 400, _json_error("Bad request", exc)
            return 200, pickle.dumps(
                self.gateway.replication_payload(base))
        if path.startswith("/api/suggest/"):
            ref_no = urllib.parse.unquote(path[len("/api/suggest/"):])
            try:
                view = self.gateway.suggest(ref_no)
            except (ValueError, ServeError) as exc:
                status, title = _failure_response(exc)
                return status, _json_error(title, exc)
            payload = {
                "ref_no": view.bundle.ref_no,
                "part_id": view.bundle.part_id,
                "degraded": view.degraded,
                "top10": view.top10,
                "suggestions": [
                    {"error_code": scored.error_code,
                     "score": round(scored.score, 6)}
                    for scored in view.suggestions.top(SUGGESTION_COUNT)],
                "all_codes": view.all_codes,
                "confidence": (view.confidence.to_payload()
                               if view.confidence is not None else None),
                "source": view.source,
            }
            return 200, json.dumps(payload, sort_keys=True)
        if path == "/api/review":
            with self.gateway.read_locked():
                entries = self.service.pending_reviews()
                counts = self.service.review_queue.counts()
            payload = {
                "counts": counts,
                "pending": [
                    {"ref_no": entry["ref_no"],
                     "part_id": entry["part_id"],
                     "confidence": round(entry["confidence"], 6),
                     "status": entry["status"],
                     "claimed_by": entry["claimed_by"]}
                    for entry in entries],
            }
            return 200, json.dumps(payload, sort_keys=True)
        if path == "/api/profiles":
            with self.gateway.read_locked():
                profiles = part_profiles(self.service.database)
            return 200, json.dumps(
                {"profiles": [profile.to_payload()
                              for profile in profiles]}, sort_keys=True)
        return 404, _json_error("Not found",
                                ValueError(f"no API route {path!r}"))

    def post(self, path: str, form: dict[str, str]) -> tuple[int, str]:
        """Handle a POST; returns (status, body) — JSON for ``/api/...``
        routes, HTML otherwise.  Every failure the gateway or service can
        raise maps through :func:`_failure_response`, the same table the
        GET routes use."""
        if self.replica_of is not None:
            # Read replicas own no authoritative state: every write is
            # refused up front, before touching the gateway, and the
            # caller is pointed at the primary.
            exc = ReplicaWriteError(
                f"read replica: writes must go to the primary at "
                f"{self.replica_of}")
            status, title = _failure_response(exc)
            if _is_json_path(path):
                return status, _json_error(title, exc)
            return status, views.render_message(title, str(exc))
        if path == "/assign" or path == "/api/assign":
            as_json = path.startswith("/api/")
            ref_no = form.get("ref_no", "")
            error_code = form.get("error_code", "")
            try:
                self.gateway.assign(self.current_user, ref_no, error_code)
            except (PermissionError_, ValueError, ServeError,
                    IntegrityError) as exc:
                status, title = _failure_response(exc)
                if as_json:
                    return status, _json_error(title, exc)
                return status, views.render_message(title, str(exc))
            if as_json:
                return 200, json.dumps(
                    {"status": "assigned", "ref_no": ref_no,
                     "error_code": error_code}, sort_keys=True)
            return 200, views.render_message(
                "Assigned", f"{error_code} assigned to {ref_no}.")
        if path == "/override" or path == "/api/override":
            as_json = path.startswith("/api/")
            ref_no = form.get("ref_no", "")
            error_code = form.get("error_code", "")
            try:
                record = self.gateway.override(self.current_user, ref_no,
                                               error_code,
                                               form.get("reason", ""))
            except (PermissionError_, ValueError, ServeError,
                    IntegrityError) as exc:
                status, title = _failure_response(exc)
                if as_json:
                    return status, _json_error(title, exc)
                return status, views.render_message(title, str(exc))
            if as_json:
                return 200, json.dumps(
                    {"status": "overridden", "ref_no": ref_no,
                     "error_code": error_code,
                     "override_id": record["override_id"]}, sort_keys=True)
            return 200, views.render_message(
                "Overridden", f"{ref_no} pinned to {error_code}.")
        if path == "/review" or path == "/api/review":
            as_json = path.startswith("/api/")
            action = form.get("action", "")
            ref_no = form.get("ref_no", "")
            try:
                if action == "claim":
                    entry = self.gateway.claim_review(self.current_user,
                                                      ref_no or None)
                    result = {"status": "claimed",
                              "ref_no": entry["ref_no"] if entry else None}
                elif action == "resolve":
                    self.gateway.resolve_review(self.current_user, ref_no,
                                                form.get("resolution", ""),
                                                form.get("error_code")
                                                or None,
                                                form.get("reason", ""))
                    result = {"status": "resolved", "ref_no": ref_no}
                else:
                    raise ValueError(f"unknown review action {action!r}")
            except (PermissionError_, ValueError, ServeError,
                    IntegrityError) as exc:
                status, title = _failure_response(exc)
                if as_json:
                    return status, _json_error(title, exc)
                return status, views.render_message(title, str(exc))
            if as_json:
                return 200, json.dumps(result, sort_keys=True)
            if result["ref_no"] is None:
                return 200, views.render_message(
                    "Review queue", "No pending reviews to claim.")
            return 200, views.render_message(
                "Review queue",
                f"{result['ref_no']} {result['status']}.")
        if path == "/codes/new":
            try:
                self.gateway.define_error_code(self.current_user,
                                               form.get("error_code", ""),
                                               form.get("part_id", ""),
                                               form.get("description", ""))
            except (PermissionError_, ValueError, ServeError,
                    IntegrityError) as exc:
                status, title = _failure_response(exc)
                return status, views.render_message(title, str(exc))
            return 200, views.render_message(
                "Created", f"error code {form.get('error_code')} created.")
        return 404, views.render_message("Not found", f"no action {path!r}")


class _HeaderDeadlineError(TimeoutError):
    """The request head dribbled past :data:`HEADER_TIMEOUT` (slowloris).

    Subclasses :class:`TimeoutError` so the stdlib handler's existing
    timeout path closes the connection without a response — exactly what
    an idle-timeout expiry does today.
    """


class _DeadlineReader:
    """Buffered read side of a handler socket with per-phase deadlines.

    Replaces the ``makefile``-based ``rfile``: the stdlib's buffered
    reader applies the socket timeout per ``recv``, so a client dribbling
    the request head byte-by-byte resets the clock on every byte.  This
    reader drives ``recv`` itself and distinguishes three phases:

    * **idle** — waiting for the first byte of the next request; a
      timeout here is the ordinary keep-alive idle close (no shed).
    * **head** — the first byte has arrived; the rest of the request
      line and headers must land within ``header_timeout`` *total*.
      Expiry sheds the connection (counted via *on_slow_shed*) by
      raising :class:`_HeaderDeadlineError`.
    * **body** — headers are parsed; reads revert to the plain
      per-``recv`` idle timeout the transport always used.

    Implements the ``readline(limit)``/``read(n)`` subset
    ``BaseHTTPRequestHandler`` and ``http.client.parse_headers`` use.
    """

    def __init__(self, sock, idle_timeout: float, header_timeout: float,
                 on_slow_shed) -> None:
        self._sock = sock
        self._idle_timeout = idle_timeout
        self._header_timeout = header_timeout
        self._on_slow_shed = on_slow_shed
        self._buffer = bytearray()
        self._phase = "body"
        self._deadline = 0.0

    def begin_request(self) -> None:
        """Arm the idle phase for the next request on this connection."""
        self._phase = "idle"

    def end_head(self) -> None:
        """Headers are parsed: drop back to plain idle-timeout reads.

        Also restores the socket timeout, so the response write that
        follows is not bounded by whatever sliver of the header deadline
        the last ``recv`` left behind (``settimeout`` is bidirectional).
        """
        self._phase = "body"
        self._sock.settimeout(self._idle_timeout)

    def _recv(self) -> bytes:
        if self._phase == "head":
            remaining = self._deadline - time.monotonic()
            if remaining <= 0:
                self._on_slow_shed()
                raise _HeaderDeadlineError("request head incomplete after "
                                           f"{self._header_timeout:g}s")
            self._sock.settimeout(remaining)
            try:
                return self._sock.recv(65536)
            except TimeoutError:
                self._on_slow_shed()
                raise _HeaderDeadlineError(
                    "request head incomplete after "
                    f"{self._header_timeout:g}s") from None
        self._sock.settimeout(self._idle_timeout)
        chunk = self._sock.recv(65536)
        if chunk and self._phase == "idle":
            self._phase = "head"
            self._deadline = time.monotonic() + self._header_timeout
        return chunk

    def readline(self, limit: int = -1) -> bytes:
        while True:
            index = self._buffer.find(b"\n")
            if index >= 0:
                end = index + 1
                if 0 <= limit < end:
                    end = limit
                line = bytes(self._buffer[:end])
                del self._buffer[:end]
                return line
            if 0 <= limit <= len(self._buffer):
                line = bytes(self._buffer[:limit])
                del self._buffer[:limit]
                return line
            chunk = self._recv()
            if not chunk:
                line = bytes(self._buffer)
                self._buffer.clear()
                return line
            self._buffer += chunk

    def read(self, size: int = -1) -> bytes:
        if size < 0:
            while True:
                chunk = self._recv()
                if not chunk:
                    break
                self._buffer += chunk
            data = bytes(self._buffer)
            self._buffer.clear()
            return data
        while len(self._buffer) < size:
            chunk = self._recv()
            if not chunk:
                break
            self._buffer += chunk
        data = bytes(self._buffer[:size])
        del self._buffer[:size]
        return data

    def close(self) -> None:
        """The handler's ``finish()`` closes rfile; the socket itself is
        owned (and closed) by the server."""


def _make_handler(app: QuestApp, draining: threading.Event,
                  max_requests: int, idle_timeout: float,
                  header_timeout: float) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        #: Without TCP_NODELAY a persistent connection stalls ~40ms per
        #: response: headers and body go out as two small segments and
        #: Nagle holds the second until the delayed ACK arrives.  The
        #: connection-per-request mode never showed this because closing
        #: the socket flushed on FIN.
        disable_nagle_algorithm = True
        #: Socket timeout while waiting for the next request on a
        #: keep-alive connection; hitting it closes the connection.
        timeout = idle_timeout

        def setup(self) -> None:
            super().setup()
            self._requests_served = 0
            # Swap the buffered makefile reader for the deadline-aware
            # one (nothing has been read yet, so no buffered bytes are
            # lost); the makefile object is closed to drop its socket
            # reference — the connection itself stays open.
            self.rfile.close()
            self.rfile = _DeadlineReader(
                self.connection, idle_timeout, header_timeout,
                lambda: app.gateway.stats.count("slow_client_sheds"))

        def handle_one_request(self) -> None:
            self.rfile.begin_request()
            super().handle_one_request()

        def parse_request(self) -> bool:
            # The request line and headers have been consumed by the
            # time the stdlib's parse returns (whether it succeeded or
            # answered 400/414 itself): lift the header deadline before
            # the route handler runs.
            try:
                return super().parse_request()
            finally:
                self.rfile.end_head()

        def _draining(self) -> bool:
            return draining.is_set() or app.gateway.stopping

        def _send(self, status: int, body: str | bytes,
                  content_type: str = "text/html; charset=utf-8",
                  head_only: bool = False) -> None:
            payload = body if isinstance(body, bytes) else \
                body.encode("utf-8")
            self._requests_served += 1
            if self._requests_served >= max_requests or self._draining():
                self.close_connection = True
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            if status in (503, 504):
                self.send_header("Retry-After", "1")
            if status == 405:
                self.send_header("Allow", "GET")
            # Advertise the connection's fate explicitly; keep-alive is
            # only promised when the request's protocol allows it
            # (close_connection is already True for plain HTTP/1.0).
            if self.close_connection:
                self.send_header("Connection", "close")
            else:
                self.send_header("Connection", "keep-alive")
            self.end_headers()
            if not head_only:
                self.wfile.write(payload)

        def _content_type(self, body: str | bytes = "") -> str:
            if isinstance(body, bytes):
                # Only /api/replicate answers bytes: a pickled payload.
                return "application/octet-stream"
            if _is_json_path(self.path):
                return "application/json"
            return "text/html; charset=utf-8"

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            try:
                status, body = app.get(self.path)
            except Exception as exc:
                # An unexpected error must still produce a well-formed,
                # Content-Length'd response; the connection is closed
                # because the failure point is unknown.
                self.close_connection = True
                self._send(500, views.render_message("Internal error",
                                                     str(exc)))
                return
            self._send(status, body, self._content_type(body))

        def do_HEAD(self) -> None:  # noqa: N802 (http.server API)
            # Same status and headers the GET would produce — exact
            # Content-Length included — with no body bytes, so a load
            # balancer can health-check /api/stats without paying for
            # (or desynchronizing on) the payload.
            try:
                status, body = app.get(self.path)
            except Exception as exc:
                self.close_connection = True
                self._send(500, views.render_message("Internal error",
                                                     str(exc)),
                           head_only=True)
                return
            self._send(status, body, self._content_type(body),
                       head_only=True)

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            form, problem = self._read_form()
            as_json = _is_json_path(self.path)
            if problem is not None:
                status, title, message = problem
                body = (_json_error(title, ValueError(message)) if as_json
                        else views.render_message(title, message))
                self._send(status, body, self._content_type())
                return
            try:
                status, body = app.post(
                    urllib.parse.urlsplit(self.path).path, form)
            except Exception as exc:
                self.close_connection = True
                self._send(500, views.render_message("Internal error",
                                                     str(exc)))
                return
            self._send(status, body, self._content_type())

        def _read_form(self):
            """Read and parse the urlencoded request body.

            Returns ``(form, None)`` on success, else ``(None, (status,
            title, message))``.  Under keep-alive the declared body is
            always consumed before answering, so a bad request cannot
            desynchronize the connection; when the declared length is
            missing, malformed or unusable the connection is marked for
            close instead — the framing is unknowable, and serving
            another request off this socket would read garbage.
            """
            raw_length = self.headers.get("Content-Length")
            try:
                length = int(raw_length) if raw_length is not None else None
            except ValueError:
                length = None
            if length is None or length < 0:
                self.close_connection = True
                return None, (400, "Bad request",
                              "missing or malformed Content-Length")
            if length > MAX_BODY_BYTES:
                self.close_connection = True
                return None, (413, "Payload too large",
                              f"declared body of {length} bytes exceeds "
                              f"the {MAX_BODY_BYTES}-byte limit")
            raw = self.rfile.read(length)
            if len(raw) < length:
                self.close_connection = True
                return None, (400, "Bad request",
                              "request body shorter than its "
                              "Content-Length")
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError:
                # The body was fully consumed, so the connection stays
                # in sync and can serve the next request.
                return None, (400, "Bad request",
                              "request body is not valid UTF-8")
            form = {key: values[0] for key, values
                    in urllib.parse.parse_qs(text).items()}
            return form, None

        def log_message(self, format: str, *args) -> None:
            pass  # keep test output clean

    return Handler


class _QuestHTTPServer(ThreadingHTTPServer):
    #: The stdlib default listen backlog of 5 drops SYNs when a pooled
    #: client opens its connections in one burst; the dropped SYN is
    #: retransmitted a full second later, which reads as a mysterious
    #: ~1000ms tail latency on an otherwise idle server.
    request_queue_size = 128


class QuestServer:
    """Threaded HTTP/1.1 server wrapper with keep-alive connections and
    clean startup/drained shutdown."""

    def __init__(self, app: QuestApp, host: str = "127.0.0.1",
                 port: int = 0, *,
                 max_requests_per_connection: int =
                 MAX_REQUESTS_PER_CONNECTION,
                 idle_timeout: float = KEEPALIVE_IDLE_TIMEOUT,
                 header_timeout: float = HEADER_TIMEOUT) -> None:
        self.app = app
        #: Set at the start of ``stop()``: every response sent from then
        #: on carries ``Connection: close``, so persistent connections
        #: fall away instead of pinning the drain on their idle timeout.
        self._draining = threading.Event()
        handler = _make_handler(app, self._draining,
                                max_requests_per_connection, idle_timeout,
                                header_timeout)
        self._server = _QuestHTTPServer((host, port), handler)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port)."""
        return self._server.server_address[:2]

    def start(self) -> None:
        """Serve in a background thread (and warm the gateway's pool)."""
        self.app.gateway.start()
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        daemon=True)
        self._thread.start()

    def stop(self, grace: float | None = None) -> "DrainReport":
        """Shut down cleanly under in-flight requests.

        Signals the drain (responses switch to ``Connection: close``),
        stops accepting connections, drains the gateway's queue with a
        bounded grace period (queued work is completed or rejected with a
        typed error — never dropped silently), closes the socket and joins
        the serve thread.  Keep-alive connections that stay idle through
        the drain are handled by daemon handler threads and die with
        their idle timeout; they cannot delay this method.  Returns the
        gateway's drain report.
        """
        self._draining.set()             # new responses say Connection: close
        self._server.shutdown()          # stop accepting new connections
        report = self.app.close(grace)   # drain queued + in-flight work
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        return report

    def __enter__(self) -> "QuestServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
