"""A minimal QUEST web application on the standard library HTTP server.

Substitute for the paper's PrimeFaces/WSO2 stack (§4.5.4): the same
user-visible functions — bundle list, top-10 suggestion screen with
full-list fallback, error-code assignment, custom code creation, user
list, and the cross-source comparison — served as plain HTML.

The handler delegates all logic to the serving gateway
(:class:`~repro.serve.ServeGateway`) and the pure view functions, so it
stays a thin transport layer.  The gateway owns queueing, micro-batching,
deadlines and the store's reader-writer lock; overload surfaces as HTTP
503 (queue full / shutdown) and 504 (deadline exceeded), and the live
counters are served as JSON on ``/stats``.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from ..data.schema import load_bundles
# Only the leaf errors module at import time: repro.serve.gateway imports
# the quest service layer, so pulling the gateway in here would close an
# import cycle through quest/__init__.  The gateway class itself is
# imported lazily in QuestApp.__init__.
from ..serve.errors import (DeadlineExceededError, GatewayStoppedError,
                            QueueFullError)
from .compare import ComparisonView
from .errors import QuestError, UnknownBundleError
from .service import QuestService
from .users import PermissionError_, User, UserStore
from . import views

if TYPE_CHECKING:
    from ..serve.gateway import DrainReport, ServeGateway


class QuestApp:
    """Bundles the gateway, users and (optional) comparison for serving."""

    def __init__(self, service: QuestService, users: UserStore,
                 current_user: User,
                 comparison: ComparisonView | None = None,
                 gateway: "ServeGateway | None" = None,
                 gateway_config=None) -> None:
        self.service = service
        self.users = users
        self.current_user = current_user
        self.comparison = comparison
        if gateway is None:
            from ..serve.gateway import ServeGateway
            gateway = ServeGateway(service, gateway_config)
        #: The serving gateway all suggest/assign traffic goes through.
        #: A default one (lazy worker pool) is built when none is given;
        #: *gateway_config* tunes it (e.g. ``worker_mode="process"``)
        #: without the caller having to construct the gateway itself.
        self.gateway = gateway

    def close(self, grace: float | None = None) -> "DrainReport":
        """Drain and stop the gateway; returns its drain report."""
        return self.gateway.stop(grace)

    # ------------------------------------------------------------------ #
    # request-level operations (transport-independent, unit-testable)

    def get(self, path: str) -> tuple[int, str]:
        """Handle a GET; returns (status, body).  *path* may carry a query
        string (used by /search?q=...).  ``/stats`` returns JSON, every
        other route HTML."""
        parts = urllib.parse.urlsplit(path)
        path, query_string = parts.path, parts.query
        if path == "/" or path == "/bundles":
            bundles = load_bundles(self.service.database)
            return 200, views.render_bundle_list(bundles)
        if path.startswith("/bundle/"):
            ref_no = urllib.parse.unquote(path[len("/bundle/"):])
            try:
                view = self.gateway.suggest(ref_no)
            except UnknownBundleError as exc:
                return 404, views.render_message("Not found", str(exc))
            except (QueueFullError, GatewayStoppedError) as exc:
                return 503, views.render_message("Server overloaded",
                                                 str(exc))
            except DeadlineExceededError as exc:
                return 504, views.render_message("Deadline exceeded",
                                                 str(exc))
            except QuestError as exc:
                return 503, views.render_message("Service degraded", str(exc))
            return 200, views.render_suggestions(view)
        if path == "/stats":
            return 200, json.dumps(self.gateway.stats_snapshot(),
                                   sort_keys=True)
        if path == "/compare":
            if self.comparison is None:
                return 200, views.render_message(
                    "Error distribution comparison",
                    "No public data source configured.")
            return 200, views.render_comparison(self.comparison)
        if path == "/users":
            return 200, views.render_users(self.users.all_users())
        if path == "/search":
            query = urllib.parse.parse_qs(query_string).get("q", [""])[0]
            matches = self.service.search_bundles(query)
            return 200, views.render_bundle_list(matches)
        if path.startswith("/history/"):
            ref_no = urllib.parse.unquote(path[len("/history/"):])
            rows = self.service.assignment_history(ref_no)
            return 200, views.render_history(ref_no, rows)
        return 404, views.render_message("Not found", f"no page {path!r}")

    def post(self, path: str, form: dict[str, str]) -> tuple[int, str]:
        """Handle a POST; returns (status, html)."""
        if path == "/assign":
            try:
                self.gateway.assign(self.current_user,
                                    form.get("ref_no", ""),
                                    form.get("error_code", ""))
            except PermissionError_ as exc:
                return 403, views.render_message("Forbidden", str(exc))
            except ValueError as exc:
                return 400, views.render_message("Bad request", str(exc))
            return 200, views.render_message(
                "Assigned", f"{form.get('error_code')} assigned to "
                            f"{form.get('ref_no')}.")
        if path == "/codes/new":
            try:
                self.gateway.define_error_code(self.current_user,
                                               form.get("error_code", ""),
                                               form.get("part_id", ""),
                                               form.get("description", ""))
            except PermissionError_ as exc:
                return 403, views.render_message("Forbidden", str(exc))
            return 200, views.render_message(
                "Created", f"error code {form.get('error_code')} created.")
        return 404, views.render_message("Not found", f"no action {path!r}")


def _make_handler(app: QuestApp) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        def _send(self, status: int, body: str,
                  content_type: str = "text/html; charset=utf-8") -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            if status == 503:
                self.send_header("Retry-After", "1")
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            status, body = app.get(self.path)
            if urllib.parse.urlsplit(self.path).path == "/stats":
                self._send(status, body, "application/json")
            else:
                self._send(status, body)

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length).decode("utf-8")
            form = {key: values[0] for key, values
                    in urllib.parse.parse_qs(raw).items()}
            status, body = app.post(urllib.parse.urlsplit(self.path).path,
                                    form)
            self._send(status, body)

        def log_message(self, format: str, *args) -> None:
            pass  # keep test output clean

    return Handler


class QuestServer:
    """Threaded HTTP server wrapper with clean startup/drained shutdown."""

    def __init__(self, app: QuestApp, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = app
        self._server = ThreadingHTTPServer((host, port), _make_handler(app))
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port)."""
        return self._server.server_address[:2]

    def start(self) -> None:
        """Serve in a background thread (and warm the gateway's pool)."""
        self.app.gateway.start()
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        daemon=True)
        self._thread.start()

    def stop(self, grace: float | None = None) -> "DrainReport":
        """Shut down cleanly under in-flight requests.

        Stops accepting connections, drains the gateway's queue with a
        bounded grace period (queued work is completed or rejected with a
        typed error — never dropped silently), closes the socket and joins
        the serve thread.  Returns the gateway's drain report.
        """
        self._server.shutdown()          # stop accepting new connections
        report = self.app.close(grace)   # drain queued + in-flight work
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        return report

    def __enter__(self) -> "QuestServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
