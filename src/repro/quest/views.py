"""Server-rendered HTML views of the QUEST web app (§4.5.4).

Pure functions from domain objects to HTML strings, so every screen is
unit-testable without a running server.  The layout mirrors the paper's
description: bundle view, top-10 suggestion screen with full-list
fallback, new-error-code form, and the side-by-side source comparison
with pie charts (rendered as inline SVG).
"""

from __future__ import annotations

import html
import math

from ..data.bundle import DataBundle
from .compare import ComparisonView, Distribution
from .service import SuggestionView

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{title} — QUEST</title>
<style>
 body {{ font-family: system-ui, sans-serif; margin: 2rem; color: #222; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #bbb; padding: .3rem .6rem; text-align: left; }}
 .report {{ background: #f6f6f6; padding: .5rem; margin: .4rem 0;
            border-left: 4px solid #888; }}
 .suggestion {{ font-weight: bold; }}
 .pies {{ display: flex; gap: 3rem; flex-wrap: wrap; }}
 nav a {{ margin-right: 1rem; }}
</style>
</head>
<body>
<nav><a href="/">bundles</a><a href="/compare">source comparison</a>
<a href="/review">review</a><a href="/profiles">profiles</a>
<a href="/users">users</a></nav>
<h1>{title}</h1>
{body}
</body>
</html>"""


def page(title: str, body: str) -> str:
    """Wrap *body* in the QUEST chrome."""
    return _PAGE.format(title=html.escape(title), body=body)


def render_bundle_list(bundles: list[DataBundle], limit: int = 50) -> str:
    """The landing screen: open bundles with links to their screens."""
    rows = []
    for bundle in bundles[:limit]:
        status = bundle.error_code or "—"
        rows.append(
            f"<tr><td><a href='/bundle/{html.escape(bundle.ref_no)}'>"
            f"{html.escape(bundle.ref_no)}</a></td>"
            f"<td>{html.escape(bundle.part_id)}</td>"
            f"<td>{html.escape(bundle.article_code)}</td>"
            f"<td>{html.escape(status)}</td></tr>")
    table = ("<table><tr><th>Reference</th><th>Part ID</th>"
             "<th>Article</th><th>Error code</th></tr>"
             + "".join(rows) + "</table>")
    return page("Data bundles", table)


def render_suggestions(view: SuggestionView) -> str:
    """The assignment screen: reports, top-10 shortlist, full-list fallback."""
    bundle = view.bundle
    reports = "".join(
        f"<div class='report'><strong>{html.escape(report.source.value)}"
        f"</strong> [{html.escape(report.language)}]<br>"
        f"{html.escape(report.text)}</div>"
        for report in bundle.reports)
    shortlist = "".join(
        f"<li class='suggestion'>"
        f"<form method='post' action='/assign' style='display:inline'>"
        f"<input type='hidden' name='ref_no' value='{html.escape(bundle.ref_no)}'>"
        f"<input type='hidden' name='error_code' value='{html.escape(scored.error_code)}'>"
        f"<button>{html.escape(scored.error_code)}</button></form>"
        f" score {scored.score:.3f}</li>"
        for scored in view.suggestions.top(10))
    fallback = "".join(f"<option>{html.escape(code)}</option>"
                       for code in view.all_codes)
    banner = ""
    if view.source == "override":
        pinned = view.suggestions.codes[0].error_code if view.suggestions.codes else ""
        banner = (f"<p class='override'>Pinned by an engineer override: "
                  f"<strong>{html.escape(pinned)}</strong></p>")
    confidence = ""
    if view.confidence is not None:
        part_note = "" if view.confidence.part_known else ", part unknown"
        confidence = (f"<p class='confidence'>Confidence "
                      f"{view.confidence.score:.3f} (margin "
                      f"{view.confidence.margin:.3f}, agreement "
                      f"{view.confidence.agreement:.3f}, pool "
                      f"{view.confidence.pool_size}"
                      f"{html.escape(part_note)})</p>")
    body = (f"<h2>Bundle {html.escape(bundle.ref_no)} "
            f"(part {html.escape(bundle.part_id)})</h2>"
            f"<p>{html.escape(bundle.part_description)}</p>"
            f"{banner}{confidence}"
            f"{reports}"
            f"<h3>Suggested error codes</h3><ol>{shortlist}</ol>"
            f"<h3>All codes for this part</h3>"
            f"<form method='post' action='/assign'>"
            f"<input type='hidden' name='ref_no' value='{html.escape(bundle.ref_no)}'>"
            f"<select name='error_code'>{fallback}</select>"
            f"<button>Assign</button></form>")
    return page(f"Assign error code — {bundle.ref_no}", body)


def _pie_svg(distribution: Distribution, size: int = 220) -> str:
    """Render one distribution as an SVG pie chart."""
    palette = ("#4e79a7", "#f28e2b", "#59a14f", "#b7b7b7")
    center = size / 2
    radius = center - 10
    slices = distribution.slices()
    paths = []
    angle = -math.pi / 2
    for index, slice_ in enumerate(slices):
        span = slice_.share * 2 * math.pi
        if span <= 0:
            continue
        x1 = center + radius * math.cos(angle)
        y1 = center + radius * math.sin(angle)
        angle += span
        x2 = center + radius * math.cos(angle)
        y2 = center + radius * math.sin(angle)
        large = 1 if span > math.pi else 0
        color = palette[index % len(palette)]
        if abs(span - 2 * math.pi) < 1e-9:
            paths.append(f"<circle cx='{center}' cy='{center}' r='{radius}' "
                         f"fill='{color}'/>")
        else:
            paths.append(
                f"<path d='M{center},{center} L{x1:.2f},{y1:.2f} "
                f"A{radius},{radius} 0 {large} 1 {x2:.2f},{y2:.2f} Z' "
                f"fill='{color}'/>")
    legend = "".join(
        f"<li><span style='color:{palette[i % len(palette)]}'>&#9632;</span> "
        f"{html.escape(s.error_code)} ({s.share:.0%})</li>"
        for i, s in enumerate(slices))
    return (f"<figure><figcaption>{html.escape(distribution.source)} "
            f"(n={distribution.total})</figcaption>"
            f"<svg width='{size}' height='{size}' role='img'>{''.join(paths)}</svg>"
            f"<ul style='list-style:none;padding:0'>{legend}</ul></figure>")


def render_comparison(view: ComparisonView) -> str:
    """The Fig. 14 screen: two pies side by side."""
    shared = ", ".join(sorted(view.shared_top_codes())) or "none"
    body = (f"<div class='pies'>{_pie_svg(view.left)}{_pie_svg(view.right)}"
            f"</div><p>Shared top codes: {html.escape(shared)}</p>")
    return page("Error distribution comparison", body)


def render_history(ref_no: str, rows: list[dict]) -> str:
    """The assignment audit trail of one bundle."""
    body_rows = "".join(
        f"<tr><td>{row['sequence']}</td>"
        f"<td>{html.escape(row['error_code'])}</td>"
        f"<td>{html.escape(row['assigned_by'])}</td>"
        f"<td>{'shortlist' if row['from_suggestions'] else 'full list'}</td>"
        f"<td>{'superseded' if row.get('superseded') else 'current'}</td>"
        f"</tr>"
        for row in rows)
    table = ("<table><tr><th>#</th><th>Error code</th><th>Assigned by</th>"
             "<th>Via</th><th>Status</th></tr>" + body_rows + "</table>"
             if rows else "<p>No assignments recorded.</p>")
    return page(f"Assignment history — {ref_no}", table)


def render_review(entries: list[dict], counts: dict[str, int]) -> str:
    """The review-queue screen: weakest suggestions first.

    Each open entry carries a claim form and a resolve form (accept /
    escalate; overrides go through the bundle screen's assign-with-pin).
    """
    rows = []
    for entry in entries:
        ref = html.escape(entry["ref_no"])
        claimed = html.escape(entry.get("claimed_by") or "—")
        actions = (
            f"<form method='post' action='/review' style='display:inline'>"
            f"<input type='hidden' name='action' value='claim'>"
            f"<input type='hidden' name='ref_no' value='{ref}'>"
            f"<button>Claim</button></form> "
            f"<form method='post' action='/review' style='display:inline'>"
            f"<input type='hidden' name='action' value='resolve'>"
            f"<input type='hidden' name='ref_no' value='{ref}'>"
            f"<select name='resolution'><option>accept</option>"
            f"<option>escalate</option></select>"
            f"<button>Resolve</button></form>")
        rows.append(
            f"<tr><td><a href='/bundle/{ref}'>{ref}</a></td>"
            f"<td>{html.escape(entry['part_id'])}</td>"
            f"<td>{entry['confidence']:.3f}</td>"
            f"<td>{html.escape(entry['status'])}</td>"
            f"<td>{claimed}</td><td>{actions}</td></tr>")
    summary = (f"<p>{counts.get('pending', 0)} pending, "
               f"{counts.get('claimed', 0)} claimed, "
               f"{counts.get('resolved', 0)} resolved.</p>")
    table = ("<table><tr><th>Reference</th><th>Part ID</th>"
             "<th>Confidence</th><th>Status</th><th>Claimed by</th>"
             "<th>Actions</th></tr>" + "".join(rows) + "</table>"
             if rows else "<p>The review queue is empty.</p>")
    return page("Review queue", summary + table)


def render_profiles(profiles: list) -> str:
    """The per-part drift screen: override/hit rates and confidence."""
    rows = "".join(
        f"<tr><td>{html.escape(profile.part_id)}</td>"
        f"<td>{profile.bundles}</td>"
        f"<td>{profile.assignments}</td>"
        f"<td>{profile.overrides}</td>"
        f"<td>{profile.reviews_open}</td>"
        f"<td>{profile.override_rate:.3f}</td>"
        f"<td>{profile.hit_rate:.3f}</td>"
        f"<td>{profile.mean_confidence:.3f}</td>"
        f"<td>{profile.min_confidence:.3f} – {profile.max_confidence:.3f}"
        f"</td></tr>"
        for profile in profiles)
    table = ("<table><tr><th>Part ID</th><th>Bundles</th>"
             "<th>Assignments</th><th>Overrides</th><th>Open reviews</th>"
             "<th>Override rate</th><th>Hit rate</th>"
             "<th>Mean confidence</th><th>Confidence range</th></tr>"
             + rows + "</table>"
             if rows else "<p>No parts with bundles yet.</p>")
    return page("Part profiles", table)


def render_users(users: list) -> str:
    """The user-maintenance screen."""
    rows = "".join(
        f"<tr><td>{html.escape(user.name)}</td>"
        f"<td>{html.escape(user.role.value)}</td>"
        f"<td>{html.escape(user.display_name)}</td></tr>"
        for user in users)
    return page("Users", "<table><tr><th>Name</th><th>Role</th>"
                         "<th>Display name</th></tr>" + rows + "</table>")


def render_message(title: str, message: str) -> str:
    """A simple confirmation / error page."""
    return page(title, f"<p>{html.escape(message)}</p>")
