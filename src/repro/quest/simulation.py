"""Simulated field study of the QUEST assignment UI.

The paper leaves "evaluating the web UI in a field study with quality
experts" as future work (§6).  This module provides the simulation harness
such a study would be designed around: it models the expert's search
effort as the number of list entries inspected before the correct code is
found —

* **without QUEST**: scanning the conventional full per-part code list,
* **with QUEST**: scanning the top-10 shortlist first and falling back to
  the full list when the shortlist misses (§4.5.4's interaction design)

— and reports the hit rate and the effort saved.  The §1.2 goal it
quantifies: "to make classification work easier for the workers ... by
sorting error codes in a meaningful way".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..classify.results import Recommendation
from ..data.bundle import DataBundle

#: Shortlist length shown by the UI (§4.5.4).
SHORTLIST = 10


@dataclass(frozen=True)
class TriageOutcome:
    """Search effort for one bundle."""

    ref_no: str
    shortlist_rank: int | None
    inspected_with_quest: int
    inspected_without_quest: int

    @property
    def shortlist_hit(self) -> bool:
        """Whether the correct code was on the top-10 shortlist."""
        return (self.shortlist_rank is not None
                and self.shortlist_rank <= SHORTLIST)


@dataclass
class FieldStudyReport:
    """Aggregated simulation results."""

    outcomes: list[TriageOutcome] = field(default_factory=list)

    @property
    def sessions(self) -> int:
        """Number of simulated triage sessions."""
        return len(self.outcomes)

    @property
    def shortlist_hit_rate(self) -> float:
        """Share of bundles resolved from the top-10 shortlist."""
        if not self.outcomes:
            return 0.0
        return sum(outcome.shortlist_hit
                   for outcome in self.outcomes) / len(self.outcomes)

    @property
    def mean_inspected_with_quest(self) -> float:
        """Mean list entries read with the QUEST shortlist."""
        if not self.outcomes:
            return 0.0
        return sum(outcome.inspected_with_quest
                   for outcome in self.outcomes) / len(self.outcomes)

    @property
    def mean_inspected_without_quest(self) -> float:
        """Mean list entries read with the conventional full list."""
        if not self.outcomes:
            return 0.0
        return sum(outcome.inspected_without_quest
                   for outcome in self.outcomes) / len(self.outcomes)

    @property
    def effort_saved(self) -> float:
        """Relative reduction of inspected list entries (0..1)."""
        without = self.mean_inspected_without_quest
        if without == 0:
            return 0.0
        return 1.0 - self.mean_inspected_with_quest / without

    def summary(self) -> str:
        """One-paragraph textual report."""
        return (f"{self.sessions} triage sessions: "
                f"shortlist hit rate {self.shortlist_hit_rate:.0%}, "
                f"entries inspected {self.mean_inspected_with_quest:.1f} "
                f"with QUEST vs {self.mean_inspected_without_quest:.1f} "
                f"without — {self.effort_saved:.0%} effort saved")


def simulate_triage(bundle: DataBundle, recommendation: Recommendation,
                    full_code_list: Sequence[str]) -> TriageOutcome:
    """Model one expert session for *bundle*.

    Effort counts list entries read top-to-bottom until the correct code;
    on a shortlist miss the expert reads the whole shortlist before
    switching to the full list (the §4.5.4 interaction).

    Raises:
        ValueError: if the bundle has no ground-truth code.
    """
    truth = bundle.error_code
    if truth is None:
        raise ValueError(f"bundle {bundle.ref_no} has no ground truth")
    try:
        full_position = full_code_list.index(truth) + 1
    except ValueError:
        full_position = len(full_code_list) + 1  # not listed: read all + ask
    rank = recommendation.rank_of(truth)
    if rank is not None and rank <= SHORTLIST:
        inspected_with = rank
    else:
        inspected_with = SHORTLIST + full_position
    return TriageOutcome(ref_no=bundle.ref_no, shortlist_rank=rank,
                         inspected_with_quest=inspected_with,
                         inspected_without_quest=full_position)


def simulate_field_study(bundles: Sequence[DataBundle],
                         recommend: Callable[[DataBundle], Recommendation],
                         full_list_for: Callable[[str], Sequence[str]],
                         ) -> FieldStudyReport:
    """Run the simulation over *bundles*.

    Args:
        bundles: labelled bundles standing in for incoming work.
        recommend: the classifier (e.g. ``qatk.classify``); called on the
            unlabelled view of each bundle.
        full_list_for: the conventional per-part full code list, as the
            original software would show it (e.g.
            ``service.full_code_list``).
    """
    report = FieldStudyReport()
    for bundle in bundles:
        recommendation = recommend(bundle.without_label())
        full_list = full_list_for(bundle.part_id)
        report.outcomes.append(simulate_triage(bundle, recommendation,
                                               full_list))
    return report
