"""QUEST: the Quality Engineering Support Tool layer (§4.5.4, §5.4)."""

from .compare import (ComparisonView, Distribution, Slice,
                      classify_complaints, compare_sources,
                      distribution_from_codes)
from .errors import DegradedServiceError, QuestError, UnknownBundleError
from .export import (assignments_to_csv, comparison_to_json,
                     recommendations_to_csv)
from .service import (SUGGESTION_COUNT, QuestService, SuggestionView)
from .simulation import (FieldStudyReport, TriageOutcome,
                         simulate_field_study, simulate_triage)
from .users import PermissionError_, Role, User, UserStore
from .webapp import QuestApp, QuestServer

__all__ = [
    "ComparisonView",
    "DegradedServiceError",
    "Distribution",
    "FieldStudyReport",
    "TriageOutcome",
    "PermissionError_",
    "QuestError",
    "UnknownBundleError",
    "QuestApp",
    "QuestServer",
    "QuestService",
    "Role",
    "SUGGESTION_COUNT",
    "Slice",
    "SuggestionView",
    "User",
    "UserStore",
    "assignments_to_csv",
    "classify_complaints",
    "comparison_to_json",
    "compare_sources",
    "distribution_from_codes",
    "recommendations_to_csv",
    "simulate_field_study",
    "simulate_triage",
]
