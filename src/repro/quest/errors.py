"""Typed exception hierarchy for the QUEST service layer.

:class:`QuestError` subclasses :class:`ValueError` because the service
historically raised bare ``ValueError`` for bad inputs; existing callers
(and tests) that catch ``ValueError`` keep working while new code can
catch storage-/service-level problems precisely.
"""

from __future__ import annotations


class QuestError(ValueError):
    """Base class for every error raised by the QUEST service layer."""


class UnknownBundleError(QuestError):
    """A reference number does not correspond to any stored bundle."""


class DegradedServiceError(QuestError):
    """Every fallback path for a degraded suggestion also failed."""
