"""A pooled keep-alive HTTP/1.1 client for the serving stack.

The stdlib gives us two unsatisfying options for driving the QUEST web
app: ``urllib.request`` (which forces ``Connection: close`` on every
call, paying a TCP connect plus a server-side handler thread per
request) and a bare ``http.client.HTTPConnection`` (persistent, but
single-connection and with no recovery when the server quietly closes an
idle socket).  This module is the third option the ROADMAP's replication
work and the serving benchmarks share:

* a **per-host connection pool** with a bounded size — connections are
  acquired exclusively, reused LIFO (warmest socket first) and released
  back after a fully-read response;
* **idle reaping** — a pooled socket that sat unused longer than
  ``idle_timeout`` is closed instead of reused, both opportunistically
  on acquire/release and via :meth:`PooledHTTPClient.reap_idle`;
* **one transparent retry** when a *reused* socket turns out to be dead
  mid-request (the server closed it while it idled in the pool — the
  classic keep-alive race).  Fresh connections and timeouts are never
  retried: a dead-on-reuse socket means the server never read the
  request, so the retry cannot double-apply it;
* **per-request timeouts** — every request carries a socket timeout
  (the client default or a per-call override).

The client is thread-safe: the pool hands each connection to exactly one
thread at a time, so closed-loop load generators can share one client
across all their workers (``benchmarks/bench_serving.py`` bench A8 does
exactly that).
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse
from collections import deque
from dataclasses import dataclass


class HTTPClientError(Exception):
    """A request could not be completed (after any transparent retry)."""


#: Errors that mean "this socket is dead", as opposed to an HTTP error
#: response (which is returned, not raised) or a timeout (which is
#: raised, never retried).  ``RemoteDisconnected`` is covered twice over
#: (it subclasses both ``BadStatusLine`` and ``ConnectionResetError``).
_DEAD_SOCKET_ERRORS = (
    http.client.BadStatusLine,
    http.client.ImproperConnectionState,
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
)


@dataclass(frozen=True)
class ClientResponse:
    """A fully-read HTTP response (the socket is already back in the
    pool or closed by the time the caller sees this)."""

    status: int
    reason: str
    headers: tuple[tuple[str, str], ...]
    body: bytes
    #: Whether the response arrived over a pooled (reused) connection.
    reused: bool
    #: Whether a dead pooled socket was transparently replaced first.
    retried: bool

    def header(self, name: str, default: str | None = None) -> str | None:
        """The first header named *name* (case-insensitive)."""
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return default

    @property
    def text(self) -> str:
        """The body decoded as UTF-8."""
        return self.body.decode("utf-8")

    def json(self):
        """The body parsed as JSON."""
        return json.loads(self.body)


class _NoDelayConnection(http.client.HTTPConnection):
    """``HTTPConnection`` with Nagle disabled.

    Request lines and form bodies are small; letting Nagle coalesce
    them against the delayed ACK of the previous response adds tens of
    milliseconds per request on a persistent connection.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class _PooledConnection:
    """A keep-alive connection parked in the pool with its release time."""

    __slots__ = ("conn", "idle_since")

    def __init__(self, conn: http.client.HTTPConnection) -> None:
        self.conn = conn
        self.idle_since = time.monotonic()


class PooledHTTPClient:
    """Keep-alive HTTP/1.1 client with a bounded per-host pool.

    Args:
        max_per_host: idle connections kept per (host, port); extra
            releases close the socket instead of growing the pool.
        idle_timeout: seconds a pooled socket may idle before it is
            reaped rather than reused.
        timeout: default per-request socket timeout (seconds).
        keep_alive: ``False`` sends ``Connection: close`` on every
            request and never pools — the connection-per-request mode
            the A8 benchmark uses as its "before" arm.
        retries: transparent retries granted when a reused socket is
            found dead (the default 1 is the keep-alive race repair;
            0 disables it).
    """

    def __init__(self, max_per_host: int = 8, idle_timeout: float = 30.0,
                 timeout: float = 10.0, keep_alive: bool = True,
                 retries: int = 1) -> None:
        if max_per_host < 0:
            raise ValueError("max_per_host must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.max_per_host = max_per_host
        self.idle_timeout = idle_timeout
        self.timeout = timeout
        self.keep_alive = keep_alive
        self.retries = retries
        self._lock = threading.Lock()
        self._pools: dict[tuple[str, int], deque[_PooledConnection]] = {}
        self._closed = False
        self._stats = {"requests": 0, "created": 0, "reused": 0,
                       "retries": 0, "reaped": 0, "discarded": 0}

    # ------------------------------------------------------------------ #
    # requests

    def request(self, method: str, url: str, body: bytes | str | None = None,
                headers: dict[str, str] | None = None,
                timeout: float | None = None) -> ClientResponse:
        """Send one request and read the response fully.

        Raises:
            HTTPClientError: the client is closed, the URL is not plain
                HTTP, or the socket died and no retry was available.
            OSError: connect failures and per-request timeouts.
        """
        host, port, target = self._split(url)
        timeout = self.timeout if timeout is None else timeout
        if isinstance(body, str):
            body = body.encode("utf-8")
        send_headers = dict(headers or {})
        if not self.keep_alive:
            send_headers.setdefault("Connection", "close")
        self._count("requests")
        retried = False
        attempts_left = self.retries
        while True:
            pooled = self._acquire(host, port)
            reused = pooled is not None
            if reused:
                conn = pooled.conn
                self._count("reused")
            else:
                conn = _NoDelayConnection(host, port, timeout=timeout)
                self._count("created")
            try:
                if conn.sock is not None:
                    conn.sock.settimeout(timeout)
                conn.request(method, target, body=body, headers=send_headers)
                response = conn.getresponse()
                payload = response.read()
            except _DEAD_SOCKET_ERRORS as exc:
                conn.close()
                if reused and attempts_left > 0:
                    # The server closed this socket while it idled in the
                    # pool; it never read the request, so one retry on a
                    # fresh connection is safe and invisible to the caller.
                    attempts_left -= 1
                    retried = True
                    self._count("retries")
                    continue
                raise HTTPClientError(
                    f"{method} {url} failed on a "
                    f"{'reused' if reused else 'fresh'} connection: "
                    f"{exc!r}") from exc
            except (OSError, http.client.HTTPException):
                conn.close()
                raise
            # A connection the server marked for close (request cap hit,
            # drain begun) must be discarded, not pooled: reusing it
            # burns the one dead-socket retry on a request the server
            # was always going to refuse.  ``will_close`` covers the
            # common cases, but the explicit header is the contract —
            # check it directly so a response ``http.client`` mispredicts
            # (or a future parser swap) can never leak a doomed socket
            # back into the pool.
            connection_header = (response.getheader("Connection")
                                 or "").lower()
            server_closing = (response.will_close
                              or "close" in connection_header)
            if self.keep_alive and not server_closing:
                self._release(host, port, conn)
            else:
                conn.close()
            return ClientResponse(status=response.status,
                                  reason=response.reason,
                                  headers=tuple(response.getheaders()),
                                  body=payload, reused=reused,
                                  retried=retried)

    def get(self, url: str, timeout: float | None = None) -> ClientResponse:
        """``GET`` *url*."""
        return self.request("GET", url, timeout=timeout)

    def post_form(self, url: str, fields: dict[str, str],
                  timeout: float | None = None) -> ClientResponse:
        """``POST`` *fields* as ``application/x-www-form-urlencoded``."""
        return self.request(
            "POST", url, body=urllib.parse.urlencode(fields),
            headers={"Content-Type": "application/x-www-form-urlencoded"},
            timeout=timeout)

    # ------------------------------------------------------------------ #
    # pool management

    def _split(self, url: str) -> tuple[str, int, str]:
        # _closed is only ever written under _lock (close()); reading it
        # unlocked here could miss a concurrent close and hand a request
        # a connection that close() will never see to shut down.
        with self._lock:
            if self._closed:
                raise HTTPClientError("client is closed")
        parts = urllib.parse.urlsplit(url)
        if parts.scheme != "http":
            raise HTTPClientError(
                f"unsupported scheme {parts.scheme!r} in {url!r} "
                f"(plain http only)")
        target = parts.path or "/"
        if parts.query:
            target += "?" + parts.query
        return parts.hostname or "127.0.0.1", parts.port or 80, target

    def _acquire(self, host: str, port: int) -> _PooledConnection | None:
        if not self.keep_alive:
            return None
        now = time.monotonic()
        key = (host, port)
        with self._lock:
            pool = self._pools.get(key)
            if pool is None:
                return None
            entry = None
            while pool:
                candidate = pool.pop()  # LIFO: the warmest socket first
                if now - candidate.idle_since > self.idle_timeout:
                    candidate.conn.close()
                    self._stats["reaped"] += 1
                    continue
                entry = candidate
                break
            if not pool:
                # Drop the emptied deque: a client polling many hosts
                # (the replication pattern) would otherwise grow _pools
                # by one dead entry per host it ever contacted.
                del self._pools[key]
            return entry

    def _release(self, host: str, port: int,
                 conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if self._closed:
                conn.close()
                return
            pool = self._pools.setdefault((host, port), deque())
            if len(pool) >= self.max_per_host:
                conn.close()
                self._stats["discarded"] += 1
                return
            pool.append(_PooledConnection(conn))

    def reap_idle(self) -> int:
        """Close every pooled connection idle beyond ``idle_timeout``;
        returns how many were reaped."""
        now = time.monotonic()
        reaped = 0
        with self._lock:
            for key in list(self._pools):
                pool = self._pools[key]
                keep: deque[_PooledConnection] = deque()
                while pool:
                    entry = pool.popleft()
                    if now - entry.idle_since > self.idle_timeout:
                        entry.conn.close()
                        reaped += 1
                    else:
                        keep.append(entry)
                pool.extend(keep)
                if not pool:
                    del self._pools[key]  # see _acquire: no empty deques
            self._stats["reaped"] += reaped
        return reaped

    def pooled_connections(self) -> int:
        """How many idle connections the pool currently holds."""
        with self._lock:
            return sum(len(pool) for pool in self._pools.values())

    def stats_snapshot(self) -> dict[str, int]:
        """A consistent copy of the client's counters."""
        with self._lock:
            return dict(self._stats)

    def _count(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._stats[key] += amount

    # ------------------------------------------------------------------ #
    # lifecycle

    def close(self) -> None:
        """Close every pooled connection; further requests raise."""
        with self._lock:
            self._closed = True
            pools, self._pools = self._pools, {}
        for pool in pools.values():
            for entry in pool:
                entry.conn.close()

    def __enter__(self) -> "PooledHTTPClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<PooledHTTPClient pooled={self.pooled_connections()} "
                f"max_per_host={self.max_per_host} "
                f"keep_alive={self.keep_alive}>")
