"""Serving counters and latency percentiles.

One :class:`ServeStats` instance per gateway; every counter mutation takes
a single plain lock (the counters are touched once or twice per request,
far off the classification hot path).  Latencies go into a bounded ring so
a long-running server reports *recent* percentiles instead of averaging
over its whole life.
"""

from __future__ import annotations

import threading
from collections import deque

#: How many recent request latencies feed the percentile estimates.
LATENCY_WINDOW = 4096


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (``fraction`` in [0, 1]).

    Returns 0.0 for an empty input so a cold server's ``/stats`` endpoint
    is well-formed.
    """
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * len(ordered)) - 1))
    return ordered[rank]


class ServeStats:
    """Thread-safe counters + latency window for one gateway."""

    def __init__(self, window: int = LATENCY_WINDOW) -> None:
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        self.submitted = 0          # requests offered to admission control
        self.rejected = 0           # shed by the bounded queue (503)
        self.completed = 0          # resolved with a suggestion view
        self.failed = 0             # resolved with an error
        self.deadline_exceeded = 0  # expired before/while being served (504)
        self.cancelled = 0          # dropped by shutdown drain
        self.batches = 0            # worker batch executions
        self.batched_requests = 0   # requests processed inside batches
        self.retried = 0            # per-request retries after a worker fault
        self.degraded = 0           # served through the degraded chain
        self.memo_hits = 0          # served from the per-version result memo
        self.assignments = 0        # writes routed through the write lock
        self.overrides = 0          # engineer override pins recorded
        self.override_hits = 0      # suggests answered by a pinned override
        self.reviews = 0            # review-queue claims/resolves routed
        self.swaps = 0              # model-snapshot swaps/bumps observed
        self.proc_batches = 0       # batches dispatched to worker processes
        self.proc_requests = 0      # requests classified by worker processes
        self.stale_rejected = 0     # stale-version worker answers rejected
        self.worker_crashes = 0     # worker-process deaths absorbed
        self.publishes = 0          # snapshot payloads shipped to the pool
        self.pool_fallbacks = 0     # broken-pool fallbacks to thread mode
        self.pool_errors = 0        # unexpected pool-path errors absorbed
        self.batch_failures = 0     # batches rejected by the catch-all guard
        self.slow_client_sheds = 0  # connections shed by the header deadline

    # ------------------------------------------------------------------ #
    # recording

    def count(self, field: str, amount: int = 1) -> None:
        """Add *amount* to one of the counter attributes."""
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def record_latency(self, seconds: float) -> None:
        """Record one completed request's queue-to-answer latency."""
        with self._lock:
            self._latencies.append(seconds)

    def record_completion(self, seconds: float) -> None:
        """Count one completed request and its latency under ONE lock hold.

        Worker callbacks must use this instead of a ``count("completed")``
        + ``record_latency(...)`` pair: with two separate acquisitions a
        concurrent :meth:`snapshot` (or the drain accounting in
        ``ServeGateway.stop``) can observe the counter without the
        latency — exactly the torn read the stats hammer test pins down.
        """
        with self._lock:
            self.completed += 1
            self._latencies.append(seconds)

    def resolved_total(self) -> int:
        """``completed + failed`` read atomically (drain accounting uses
        this; reading the attributes back-to-back without the lock can
        tear against a concurrent worker callback)."""
        with self._lock:
            return self.completed + self.failed

    # ------------------------------------------------------------------ #
    # reporting

    def latency_ms(self, fraction: float) -> float:
        """A latency percentile over the recent window, in milliseconds."""
        with self._lock:
            values = list(self._latencies)
        return percentile(values, fraction) * 1000.0

    def snapshot(self) -> dict:
        """A point-in-time dict of every counter plus p50/p95/p99 (ms)."""
        with self._lock:
            values = list(self._latencies)
            counters = {
                "submitted": self.submitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "deadline_exceeded": self.deadline_exceeded,
                "cancelled": self.cancelled,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "retried": self.retried,
                "degraded": self.degraded,
                "memo_hits": self.memo_hits,
                "assignments": self.assignments,
                "overrides": self.overrides,
                "override_hits": self.override_hits,
                "reviews": self.reviews,
                "swaps": self.swaps,
                "proc_batches": self.proc_batches,
                "proc_requests": self.proc_requests,
                "stale_rejected": self.stale_rejected,
                "worker_crashes": self.worker_crashes,
                "publishes": self.publishes,
                "pool_fallbacks": self.pool_fallbacks,
                "pool_errors": self.pool_errors,
                "batch_failures": self.batch_failures,
                "slow_client_sheds": self.slow_client_sheds,
            }
        counters["mean_batch_size"] = (
            round(counters["batched_requests"] / counters["batches"], 3)
            if counters["batches"] else 0.0)
        counters["p50_ms"] = round(percentile(values, 0.50) * 1000.0, 4)
        counters["p95_ms"] = round(percentile(values, 0.95) * 1000.0, 4)
        counters["p99_ms"] = round(percentile(values, 0.99) * 1000.0, 4)
        return counters

    def __repr__(self) -> str:
        return (f"<ServeStats submitted={self.submitted} "
                f"completed={self.completed} rejected={self.rejected}>")
