"""The model registry: versioned classifier snapshots + the store lock.

Serving reads (classification) and knowledge-base writes (assignments,
custom codes) meet here:

* :class:`ModelSnapshot` is an immutable, *warm* view of the models a
  request is served with — classifier, frequency baseline and optional
  BoW fallback — stamped with a monotonically increasing ``version``.
  Workers read ``registry.current()`` once per batch; a swap mid-batch
  cannot tear a request across two model generations.
* :meth:`ModelRegistry.swap` atomically replaces the snapshot (e.g. after
  an offline retrain), and :meth:`ModelRegistry.bump` re-stamps the
  current models after an in-place knowledge-base update, invalidating
  every version-keyed cache downstream.
* ``registry.store_lock`` is the reader-writer lock serializing relstore
  access: the relstore tables are single-writer by contract, so every
  mutation takes the exclusive side while classifications share the read
  side.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from ..classify.baselines import CodeFrequencyBaseline
from ..classify.knn import RankedKnnClassifier
from .locks import RWLock


@dataclass(frozen=True)
class ModelSnapshot:
    """An immutable serving view of the models (see module docstring).

    The snapshot object itself never changes; the *models* it points at
    are only mutated under the registry's write lock, and any such
    mutation must be followed by :meth:`ModelRegistry.bump` so readers'
    caches drop stale derived data.
    """

    version: int
    classifier: RankedKnnClassifier
    frequency_baseline: CodeFrequencyBaseline
    fallback_classifier: RankedKnnClassifier | None = None


class ModelRegistry:
    """Atomic snapshot holder + the relstore reader-writer lock."""

    def __init__(self, snapshot: ModelSnapshot) -> None:
        self._snapshot = snapshot
        self._swap_lock = threading.Lock()
        #: Reader-writer lock around the relstore-backed state; see module
        #: docstring.  Shared by every transport that mutates the store.
        self.store_lock = RWLock()

    @classmethod
    def from_service(cls, service) -> "ModelRegistry":
        """Build a registry over a :class:`~repro.quest.service.QuestService`'s
        models (version 1)."""
        return cls(ModelSnapshot(
            version=1,
            classifier=service.classifier,
            frequency_baseline=service.frequency_baseline,
            fallback_classifier=service.fallback_classifier))

    def current(self) -> ModelSnapshot:
        """The snapshot serving new requests (a plain atomic read)."""
        return self._snapshot

    @property
    def version(self) -> int:
        """The current snapshot's version."""
        return self._snapshot.version

    def swap(self, classifier: RankedKnnClassifier | None = None,
             frequency_baseline: CodeFrequencyBaseline | None = None,
             fallback_classifier: RankedKnnClassifier | None = None,
             ) -> ModelSnapshot:
        """Atomically publish a new snapshot; omitted models carry over.

        The caller is responsible for handing over *warm* models (built
        and exercised off the serving path) — the swap itself is just a
        reference assignment, so readers never wait on model construction.
        Returns the published snapshot.
        """
        with self._swap_lock:
            current = self._snapshot
            updated = ModelSnapshot(
                version=current.version + 1,
                classifier=classifier or current.classifier,
                frequency_baseline=(frequency_baseline
                                    or current.frequency_baseline),
                fallback_classifier=(fallback_classifier
                                     if fallback_classifier is not None
                                     else current.fallback_classifier))
            self._snapshot = updated
            return updated

    def bump(self) -> ModelSnapshot:
        """Re-version the current snapshot after an in-place model update
        (e.g. the knowledge base learned from a confirmed assignment).
        Version-keyed caches treat this exactly like a swap."""
        with self._swap_lock:
            self._snapshot = replace(self._snapshot,
                                     version=self._snapshot.version + 1)
            return self._snapshot

    def __repr__(self) -> str:
        return f"<ModelRegistry version={self.version}>"
