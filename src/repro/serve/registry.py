"""The model registry: versioned classifier snapshots + the store lock.

Serving reads (classification) and knowledge-base writes (assignments,
custom codes) meet here:

* :class:`ModelSnapshot` is an immutable, *warm* view of the models a
  request is served with — classifier, frequency baseline and optional
  BoW fallback — stamped with a monotonically increasing ``version``.
  Workers read ``registry.current()`` once per batch; a swap mid-batch
  cannot tear a request across two model generations.
* :meth:`ModelRegistry.swap` atomically replaces the snapshot (e.g. after
  an offline retrain), and :meth:`ModelRegistry.bump` re-stamps the
  current models after an in-place knowledge-base update, invalidating
  every version-keyed cache downstream.
* ``registry.store_lock`` is the reader-writer lock serializing *model*
  access.  Since the relstore grew MVCC snapshot isolation, plain row
  reads no longer take the read side — they pin a committed read view
  (``Database.read_view()``) and never block.  The write side still
  serializes whole service calls (their read-compute-write sequences
  assume one writer at a time), and the read side survives only around
  walks of the knowledge base's write-through node cache — the one
  shared structure MVCC does not version (classification, payload
  exports).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from ..classify.baselines import CodeFrequencyBaseline
from ..classify.knn import RankedKnnClassifier
from ..classify.similarity import SIMILARITIES
from ..knowledge.base import FrozenKnowledgeView
from .errors import SnapshotPayloadError
from .locks import RWLock

#: Version tag of the snapshot payload wire format.
PAYLOAD_FORMAT = 1

#: How many exported full payloads a registry retains (newest-first).
#: Replicas polling with one of these versions as their base are served
#: a row-level delta instead of a full payload (see repro.serve.replica).
PAYLOAD_RETENTION = 8

#: Sentinel distinguishing "argument omitted" from an explicit ``None``
#: in :meth:`ModelRegistry.swap` — ``fallback_classifier=None`` must
#: *clear* the fallback, not carry the old one over.
_UNSET = object()


def _classifier_to_payload(classifier: RankedKnnClassifier) -> dict:
    """One classifier as a picklable dict (rows + feature space + config)."""
    knowledge = classifier.knowledge_base
    export = getattr(knowledge, "export_rows", None)
    if export is None:
        raise SnapshotPayloadError(
            f"knowledge base {type(knowledge).__name__} cannot export rows; "
            f"snapshot payloads need a KnowledgeBase or FrozenKnowledgeView")
    similarity = next((name for name, fn in SIMILARITIES.items()
                       if fn is classifier.similarity), None)
    return {
        "rows": export(),
        "feature_kind": getattr(knowledge, "feature_kind", "features"),
        # The extractor object itself (BagOfWords / BagOfConcepts incl.
        # its annotator trie) rides along — it IS the feature space.
        "extractor": classifier.extractor,
        # Registered measures travel by name; custom callables must be
        # picklable themselves.
        "similarity": similarity if similarity is not None
                      else classifier.similarity,
        "node_cutoff": classifier.node_cutoff,
    }


def _classifier_from_payload(payload: dict) -> RankedKnnClassifier:
    """Rebuild a classifier over a read-only frozen knowledge view."""
    knowledge = FrozenKnowledgeView(payload["rows"],
                                    feature_kind=payload["feature_kind"])
    return RankedKnnClassifier(knowledge, payload["extractor"],
                               payload["similarity"],
                               payload["node_cutoff"])


def _classifier_config_equal(old: dict, new: dict) -> bool:
    """Whether two classifier payloads differ only in their rows."""
    return (old["feature_kind"] == new["feature_kind"]
            and old["similarity"] == new["similarity"]
            and old["node_cutoff"] == new["node_cutoff"]
            and old["extractor"] is new["extractor"])


def _rows_delta(old_rows: list, new_rows: list) -> dict | None:
    """Upserts/removals turning *old_rows* into *new_rows* (by row id).

    Returns None when the delta would not be smaller than shipping the
    full row list.
    """
    old_by_id = {row[0]: row for row in old_rows}
    new_by_id = {row[0]: row for row in new_rows}
    upserts = [row for row_id, row in new_by_id.items()
               if old_by_id.get(row_id) != row]
    removed = sorted(row_id for row_id in old_by_id
                     if row_id not in new_by_id)
    if len(upserts) + len(removed) >= len(new_rows):
        return None
    return {"upserts": sorted(upserts), "removed": removed}


def diff_payloads(old: dict, new: dict) -> dict | None:
    """A delta payload turning *old* into *new*, or None when only a full
    payload is safe/worthwhile (config changed, or the delta would be as
    large as the full row list).

    The delta carries row upserts/removals per classifier plus the full
    (small) frequency table; the extractor and classifier config are
    never re-shipped — a config change forces a full payload.
    """
    if old.get("format") != PAYLOAD_FORMAT or new.get("format") != PAYLOAD_FORMAT:
        raise SnapshotPayloadError("can only diff format-1 full payloads")
    if old.get("kind") != "full" or new.get("kind") != "full":
        raise SnapshotPayloadError("can only diff full payloads")
    if new["version"] <= old["version"]:
        # A self- or backward-targeted delta can only come from a caller
        # bug (e.g. diffing a payload against itself); applying one would
        # silently re-stamp stale rows with a bogus version.
        raise SnapshotPayloadError(
            f"delta versions must be strictly increasing, got "
            f"{old['version']} -> {new['version']}")
    if not _classifier_config_equal(old["classifier"], new["classifier"]):
        return None
    if (new["fallback"] is None) != (old["fallback"] is None):
        return None
    fallback_delta = None
    if new["fallback"] is not None:
        if not _classifier_config_equal(old["fallback"], new["fallback"]):
            return None
        if old["fallback"]["rows"] != new["fallback"]["rows"]:
            fallback_delta = _rows_delta(old["fallback"]["rows"],
                                         new["fallback"]["rows"])
            if fallback_delta is None:
                return None
    classifier_delta = _rows_delta(old["classifier"]["rows"],
                                   new["classifier"]["rows"])
    if classifier_delta is None:
        return None
    delta = {
        "format": PAYLOAD_FORMAT,
        "kind": "delta",
        "version": new["version"],
        "base_version": old["version"],
        "classifier": classifier_delta,
        "fallback": fallback_delta,
        "frequency": new["frequency"],
    }
    if "overrides" in new or "overrides" in old:
        # The override map is tiny (one ref/code pair per active pin), so
        # deltas ship it whole, like the frequency table.
        delta["overrides"] = dict(new.get("overrides") or {})
    return delta


def _apply_rows_delta(rows: list, delta: dict) -> list:
    by_id = {row[0]: row for row in rows}
    for row_id in delta["removed"]:
        by_id.pop(row_id, None)
    for row in delta["upserts"]:
        by_id[row[0]] = row
    return sorted(by_id.values())


def apply_payload_delta(base: dict, delta: dict) -> dict:
    """Apply a :func:`diff_payloads` delta to a full *base* payload.

    Raises:
        SnapshotPayloadError: when *delta* was produced against a
            different base version — the caller must request a full
            payload instead of serving from a wrong reconstruction.
    """
    if delta.get("kind") != "delta" or base.get("kind") != "full":
        raise SnapshotPayloadError("apply_payload_delta needs (full, delta)")
    if delta["base_version"] != base["version"]:
        raise SnapshotPayloadError(
            f"delta targets base version {delta['base_version']}, "
            f"payload is version {base['version']}")
    updated = dict(base)
    updated["version"] = delta["version"]
    classifier = dict(base["classifier"])
    classifier["rows"] = _apply_rows_delta(classifier["rows"],
                                           delta["classifier"])
    updated["classifier"] = classifier
    if delta["fallback"] is not None:
        fallback = dict(base["fallback"])
        fallback["rows"] = _apply_rows_delta(fallback["rows"],
                                             delta["fallback"])
        updated["fallback"] = fallback
    updated["frequency"] = delta["frequency"]
    if "overrides" in delta:
        updated["overrides"] = dict(delta["overrides"])
    return updated


@dataclass(frozen=True)
class ModelSnapshot:
    """An immutable serving view of the models (see module docstring).

    The snapshot object itself never changes; the *models* it points at
    are only mutated under the registry's write lock, and any such
    mutation must be followed by :meth:`ModelRegistry.bump` so readers'
    caches drop stale derived data.
    """

    version: int
    classifier: RankedKnnClassifier
    frequency_baseline: CodeFrequencyBaseline
    fallback_classifier: RankedKnnClassifier | None = None
    #: Active engineer overrides (``{ref_no: error_code}``).  Part of the
    #: snapshot so every executor — in-process, worker process, replica —
    #: serves the same pins for the same version.
    overrides: dict[str, str] = field(default_factory=dict)

    # -------------------------------------------------------------- #
    # process-boundary export/import

    def to_payload(self) -> dict:
        """Export this snapshot as one picklable payload dict.

        The payload is a *copy* of everything classification needs —
        knowledge rows (with their row ids, so candidate ordering is
        preserved exactly), the feature extractor, the classifier config
        and the frequency table.  No relstore handle, no locks and no
        mutable shared state cross the boundary: mutating the live models
        after export cannot change what a payload-built snapshot answers.
        """
        return {
            "format": PAYLOAD_FORMAT,
            "kind": "full",
            "version": self.version,
            "classifier": _classifier_to_payload(self.classifier),
            "frequency": self.frequency_baseline.frequency_table(),
            "fallback": (_classifier_to_payload(self.fallback_classifier)
                         if self.fallback_classifier is not None else None),
            "overrides": dict(self.overrides),
        }

    @staticmethod
    def from_payload(payload: dict) -> "ModelSnapshot":
        """Rebuild a serving snapshot from :meth:`to_payload` output.

        The result classifies byte-identically to the snapshot that was
        exported: same rows under the same row ids, same extractor, same
        similarity and cutoff — only the knowledge base is a read-only
        :class:`~repro.knowledge.base.FrozenKnowledgeView` instead of the
        relstore-backed original.
        """
        if payload.get("format") != PAYLOAD_FORMAT:
            raise SnapshotPayloadError(
                f"unsupported payload format {payload.get('format')!r}")
        if payload.get("kind") != "full":
            raise SnapshotPayloadError(
                "from_payload needs a full payload; apply deltas with "
                "apply_payload_delta first")
        return ModelSnapshot(
            version=payload["version"],
            classifier=_classifier_from_payload(payload["classifier"]),
            frequency_baseline=CodeFrequencyBaseline.from_frequencies(
                payload["frequency"]),
            fallback_classifier=(
                _classifier_from_payload(payload["fallback"])
                if payload["fallback"] is not None else None),
            overrides=dict(payload.get("overrides") or {}))


class ModelRegistry:
    """Atomic snapshot holder + the relstore reader-writer lock."""

    def __init__(self, snapshot: ModelSnapshot, *,
                 retain_payloads: int = PAYLOAD_RETENTION) -> None:
        self._snapshot = snapshot
        self._swap_lock = threading.Lock()
        #: Reader-writer lock around the relstore-backed state; see module
        #: docstring.  Shared by every transport that mutates the store.
        self.store_lock = RWLock()
        # Recently exported full payloads by version (bounded LRU).  The
        # replication endpoint diffs the current export against whichever
        # of these a replica reports as its base, so deltas are always
        # computed against bytes a replica can actually hold.
        self._payload_lock = threading.Lock()
        self._retain = max(1, retain_payloads)
        self._payloads: OrderedDict[int, dict] = OrderedDict()

    @classmethod
    def from_service(cls, service, *,
                     retain_payloads: int = PAYLOAD_RETENTION,
                     ) -> "ModelRegistry":
        """Build a registry over a :class:`~repro.quest.service.QuestService`'s
        models (version 1).  The service's active override pins seed the
        snapshot's override map."""
        override_store = getattr(service, "overrides", None)
        overrides = (override_store.active_map()
                     if override_store is not None else {})
        return cls(ModelSnapshot(
            version=1,
            classifier=service.classifier,
            frequency_baseline=service.frequency_baseline,
            fallback_classifier=service.fallback_classifier,
            overrides=overrides),
            retain_payloads=retain_payloads)

    def current(self) -> ModelSnapshot:
        """The snapshot serving new requests (a plain atomic read)."""
        return self._snapshot

    @property
    def version(self) -> int:
        """The current snapshot's version."""
        return self._snapshot.version

    def swap(self, classifier: RankedKnnClassifier | None = None,
             frequency_baseline: CodeFrequencyBaseline | None = None,
             fallback_classifier=_UNSET, overrides=_UNSET) -> ModelSnapshot:
        """Atomically publish a new snapshot; omitted models carry over.

        The caller is responsible for handing over *warm* models (built
        and exercised off the serving path) — the swap itself is just a
        reference assignment, so readers never wait on model construction.
        ``fallback_classifier=None`` explicitly *clears* the fallback
        (an ``is not None`` carry-over test used to make that impossible);
        leaving the argument out keeps the current one.  *overrides*
        replaces the snapshot's override map when given.
        Returns the published snapshot.
        """
        with self._swap_lock:
            current = self._snapshot
            updated = ModelSnapshot(
                version=current.version + 1,
                classifier=classifier or current.classifier,
                frequency_baseline=(frequency_baseline
                                    or current.frequency_baseline),
                fallback_classifier=(fallback_classifier
                                     if fallback_classifier is not _UNSET
                                     else current.fallback_classifier),
                overrides=(dict(overrides) if overrides is not _UNSET
                           else current.overrides))
            self._snapshot = updated
            return updated

    def install(self, snapshot: ModelSnapshot) -> ModelSnapshot:
        """Atomically adopt *snapshot* exactly as given.

        Unlike :meth:`swap`, the version comes from the snapshot itself —
        this is the replication path: a replica must serve under the
        *primary's* version number, or staleness accounting and
        version-keyed caches would compare apples to oranges.
        """
        with self._swap_lock:
            self._snapshot = snapshot
            return snapshot

    # -------------------------------------------------------------- #
    # retained payload exports (the replication endpoint's diff bases)

    def retain_payload(self, payload: dict) -> None:
        """Remember one exported full payload for later delta service.

        Bounded LRU per version: replicas that poll with a retained
        version as their base get a row-level delta; everyone else gets
        the full payload.
        """
        if payload.get("kind") != "full":
            raise SnapshotPayloadError("can only retain full payloads")
        with self._payload_lock:
            self._payloads[payload["version"]] = payload
            self._payloads.move_to_end(payload["version"])
            while len(self._payloads) > self._retain:
                self._payloads.popitem(last=False)

    def retained_payload(self, version: int) -> dict | None:
        """The retained full payload for *version*, or ``None``."""
        with self._payload_lock:
            payload = self._payloads.get(version)
            if payload is not None:
                self._payloads.move_to_end(version)
            return payload

    def retained_versions(self) -> tuple[int, ...]:
        """Versions with a retained payload, oldest first."""
        with self._payload_lock:
            return tuple(self._payloads)

    def bump(self, overrides=_UNSET) -> ModelSnapshot:
        """Re-version the current snapshot after an in-place model update
        (e.g. the knowledge base learned from a confirmed assignment).
        Version-keyed caches treat this exactly like a swap.  *overrides*
        replaces the snapshot's override map when given — write paths
        that pin/supersede overrides pass the store's fresh active map."""
        with self._swap_lock:
            if overrides is _UNSET:
                self._snapshot = replace(self._snapshot,
                                         version=self._snapshot.version + 1)
            else:
                self._snapshot = replace(self._snapshot,
                                         version=self._snapshot.version + 1,
                                         overrides=dict(overrides))
            return self._snapshot

    def __repr__(self) -> str:
        return f"<ModelRegistry version={self.version}>"
