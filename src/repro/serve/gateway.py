"""The serving gateway: queue -> micro-batcher -> worker pool -> service.

``ServeGateway`` sits between transports (web app, CLI, load generator)
and :class:`~repro.quest.service.QuestService`:

1. **Admission control** — a bounded :class:`RequestQueue`; overload sheds
   as :class:`QueueFullError` (HTTP 503) instead of growing the backlog.
2. **Dynamic micro-batching** — pending ``suggest`` requests coalesce up
   to ``max_batch_size``/``max_wait_ms`` and execute as one pass: bundle
   loads, feature extraction, per-part code lists and healthy
   recommendations are computed once per *unique* ref/part in the batch
   and memoized per model-snapshot version, so repeat traffic stops
   paying the full per-bundle classification cost the bare service
   charges.  Any write bumps the version and resets every memo.
3. **Fixed worker pool** — per-request deadlines, timeout/cancellation,
   one retry on a worker fault, then the degraded-suggest chain
   (stored -> fallback classifier -> frequency baseline).
4. **Model registry + MVCC** — workers serve from an immutable
   :class:`~repro.serve.registry.ModelSnapshot`; relstore reads (bundle
   loads, code lists, stored suggestions, read-only screens) pin an MVCC
   read view so they see one committed snapshot without blocking writers
   or being blocked by them.  Writes run as relstore transactions under
   the registry's write lock — a failed service call rolls back atomically
   — and re-version the snapshot, which invalidates the gateway's memos.
5. **Stats** — every outcome lands in :class:`~repro.serve.stats.ServeStats`
   (exposed on the web app's ``/stats`` and in bench output).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..classify.results import store_recommendations
from ..data.bundle import DataBundle
from ..knowledge.extractor import test_document
from ..quest.errors import DegradedServiceError, UnknownBundleError
from ..quest.service import QuestService, SuggestionView
from ..quest.users import User
from .errors import (DeadlineExceededError, GatewayStoppedError,
                     SnapshotPayloadError, WorkerCrashError)
from .procpool import BrokenProcessPool, ProcessWorkerPool, WorkItem
from ..triage import (OVERRIDE_CONFIDENCE, override_recommendation,
                      score_confidence)
from .queue import RequestQueue, SuggestRequest
from .registry import (PAYLOAD_FORMAT, ModelRegistry, ModelSnapshot,
                       diff_payloads)
from .stats import ServeStats

#: Recognised values of :attr:`GatewayConfig.worker_mode`.
WORKER_MODES = ("thread", "process")


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs of the gateway (see docs/serving.md)."""

    #: Fixed worker-pool size.  Workers are threads; classification is
    #: pure Python, so more workers buy overlap between batches (and keep
    #: serving while one batch runs a degraded fallback), not parallel CPU.
    workers: int = 2
    #: Admission-control bound: pending requests beyond this are shed.
    max_queue: int = 64
    #: Micro-batch cap: a worker takes at most this many requests at once.
    max_batch_size: int = 16
    #: How long the batcher waits for stragglers after the first request.
    max_wait_ms: float = 2.0
    #: Default per-request deadline (seconds); ``suggest(timeout=...)``
    #: overrides per call.
    default_timeout: float = 10.0
    #: Bounded size of the per-version memo tables (entries per memo).
    memo_size: int = 8192
    #: Grace period ``stop()`` grants in-flight and queued work.
    drain_grace: float = 5.0
    #: Persist freshly computed (healthy) recommendations, as the bare
    #: service's ``suggest(persist=True)`` does.
    persist: bool = True
    #: ``"thread"`` serves batches on the batcher threads themselves;
    #: ``"process"`` dispatches the CPU-heavy classification half to a
    #: snapshot-seeded :class:`~repro.serve.procpool.ProcessWorkerPool`
    #: (real cores instead of GIL time-slices), falling back to the
    #: thread path whenever the pool cannot answer.
    worker_mode: str = "thread"
    #: Worker-process count for ``worker_mode="process"``; ``None`` sizes
    #: the pool from the machine's CPU count.
    worker_procs: int | None = None


@dataclass(frozen=True)
class DrainReport:
    """What happened to outstanding work during ``stop()``."""

    #: Requests completed (or failed normally) during the grace period.
    drained: int
    #: Queued requests rejected with :class:`GatewayStoppedError`.
    cancelled: int
    #: The grace period that was granted.
    grace_seconds: float
    #: True when nothing had to be cancelled.
    clean: bool

    def summary(self) -> str:
        state = "clean" if self.clean else f"{self.cancelled} cancelled"
        return (f"drain: {self.drained} completed during "
                f"{self.grace_seconds:.1f}s grace, {state}")


class ServeGateway:
    """Concurrent serving front-end over one :class:`QuestService`."""

    def __init__(self, service: QuestService,
                 config: GatewayConfig | None = None,
                 registry: ModelRegistry | None = None) -> None:
        self.service = service
        self.config = config or GatewayConfig()
        if self.config.worker_mode not in WORKER_MODES:
            raise ValueError(f"worker_mode must be one of {WORKER_MODES}, "
                             f"not {self.config.worker_mode!r}")
        self.registry = (registry if registry is not None
                         else ModelRegistry.from_service(service))
        self.stats = ServeStats()
        self._pool: ProcessWorkerPool | None = None
        self._pool_lock = threading.Lock()
        self._queue = RequestQueue(self.config.max_queue)
        self._threads: list[threading.Thread] = []
        self._start_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._stopped = False
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        # Per-snapshot memos (all guarded by _memo_lock): bundles,
        # extracted features, per-part code lists and healthy
        # recommendations survive across batches until a write installs a
        # new snapshot.  Keyed by snapshot *identity*, not version number:
        # a replica's install() adopts the primary's version, which can
        # repeat across different models (e.g. after a primary restart).
        # persisted_refs keeps the batcher from re-writing an identical
        # recommendation row set for every repeat request per snapshot.
        self._memo_lock = threading.Lock()
        self._memo_snapshot: ModelSnapshot | None = None
        self._bundle_memo: dict[str, DataBundle] = {}
        self._feature_memo: dict[str, frozenset[str]] = {}
        self._codes_memo: dict[str, list[str]] = {}
        self._rec_memo: dict[str, object] = {}
        self._persisted_refs: set[str] = set()

    # ------------------------------------------------------------------ #
    # lifecycle

    @property
    def started(self) -> bool:
        """Whether the worker pool is running."""
        return bool(self._threads)

    @property
    def stopping(self) -> bool:
        """True once :meth:`stop` has begun (or finished).  Transports
        use this as the drain signal: the web app answers with
        ``Connection: close`` from this point on, so persistent
        connections converge instead of idling through the grace
        period."""
        return self._stopped

    @contextmanager
    def read_locked(self):
        """A stable committed view of the service's store.

        Read-only screens that bypass the suggest queue (bundle list,
        search, assignment history) used to share the writer-preferring
        RWLock with the write paths; they now pin an MVCC read view
        (:meth:`~repro.relstore.database.Database.read_view`) instead —
        every row they see comes from one committed snapshot, a
        concurrent ``assign`` can neither hand them a torn row set *nor
        make them wait*, and writers no longer stall behind slow
        screens.  Reentrant per thread; the name survives from the lock
        era because transports treat it as an opaque read guard.
        """
        with self.service.database.read_view():
            yield

    @contextmanager
    def _write_txn(self):
        """The gateway write-path guard: write lock + MVCC transaction.

        The registry's write lock still serializes whole *service calls*
        (their read-compute-write sequences assume no concurrent writer,
        and the knowledge base's write-through node cache is unversioned);
        the transaction underneath makes the relstore half atomic — a
        service call that fails mid-way rolls back every row it touched
        instead of leaving partial writes.  A rollback also resyncs the
        knowledge caches, which keep the applied view while the relstore
        reverts (see :meth:`~repro.knowledge.base.KnowledgeBase.reload`).
        """
        with self.registry.store_lock.write_locked():
            try:
                with self.service.database.transaction():
                    yield
            except BaseException:
                self._resync_knowledge_caches()
                raise

    def _resync_knowledge_caches(self) -> None:
        """Rebuild write-through knowledge caches after a rollback, for
        every model whose knowledge base lives in the service's database
        (a knowledge base on its own database never rolled back)."""
        for classifier in (self.service.classifier,
                           self.service.fallback_classifier):
            if classifier is None:
                continue
            knowledge = classifier.knowledge_base
            reload = getattr(knowledge, "reload", None)
            if (reload is not None
                    and getattr(knowledge, "database", None)
                    is self.service.database):
                reload()

    def start(self) -> None:
        """Spawn the worker pool (idempotent; also called lazily)."""
        with self._start_lock:
            if self._threads or self._stopped:
                return
            if self.config.worker_mode == "process":
                self._pool = self._make_pool()
            for number in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker_loop, daemon=True,
                    name=f"serve-worker-{number}")
                thread.start()
                self._threads.append(thread)

    def stop(self, grace: float | None = None) -> DrainReport:
        """Drain and shut down; returns what happened to pending work.

        New work is refused immediately; queued and in-flight requests get
        *grace* seconds (default ``config.drain_grace``) to finish, then
        whatever is still queued is rejected with
        :class:`GatewayStoppedError` — never dropped silently.
        Idempotent: a second call reports an already-clean drain.
        """
        grace = self.config.drain_grace if grace is None else grace
        with self._start_lock:
            already_stopped, self._stopped = self._stopped, True
        self._queue.close()
        if already_stopped:
            return DrainReport(0, 0, grace, clean=True)
        completed_before = self.stats.resolved_total()
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            with self._inflight_lock:
                idle = self._inflight == 0
            if idle and len(self._queue) == 0:
                break
            time.sleep(0.005)
        leftovers = self._queue.drain()
        for request in leftovers:
            request.reject(GatewayStoppedError(
                "gateway stopped before this request was served"))
        self.stats.count("cancelled", len(leftovers))
        self._stop_event.set()
        for thread in self._threads:
            thread.join(timeout=max(grace, 1.0))
        self._threads.clear()
        pool = self._pool
        if pool is not None:
            self._pool = None
            pool.stop()
        drained = self.stats.resolved_total() - completed_before
        return DrainReport(drained=drained, cancelled=len(leftovers),
                           grace_seconds=grace, clean=not leftovers)

    def __enter__(self) -> "ServeGateway":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # read path: suggest

    def suggest(self, ref_no: str,
                timeout: float | None = None) -> SuggestionView:
        """Queue a suggestion request and wait for its micro-batch.

        Args:
            ref_no: the bundle's reference number.
            timeout: per-request deadline in seconds (default
                ``config.default_timeout``).

        Raises:
            QueueFullError: admission control shed the request.
            GatewayStoppedError: the gateway is shutting down.
            DeadlineExceededError: no answer within the deadline.
            UnknownBundleError / DegradedServiceError: as the service.
        """
        self.start()
        timeout = self.config.default_timeout if timeout is None else timeout
        request = SuggestRequest(ref_no=ref_no,
                                 deadline=time.monotonic() + timeout)
        self.stats.count("submitted")
        try:
            self._queue.put(request)
        except Exception:
            self.stats.count("rejected")
            raise
        try:
            view = request.wait(timeout)
        except DeadlineExceededError:
            self.stats.count("deadline_exceeded")
            raise
        return view

    # ------------------------------------------------------------------ #
    # write path: everything that mutates the relstore

    def assign(self, actor: User, ref_no: str, error_code: str) -> None:
        """Record an assignment transactionally and bump the model
        snapshot (the knowledge base just learned)."""
        with self._write_txn():
            self.service.assign_code(actor, ref_no, error_code)
        self.stats.count("assignments")
        self.registry.bump()
        self.stats.count("swaps")
        self._publish_snapshot()

    def define_error_code(self, actor: User, error_code: str, part_id: str,
                          description: str) -> None:
        """Create a custom code transactionally (code lists change)."""
        with self._write_txn():
            self.service.define_error_code(actor, error_code, part_id,
                                           description)
        self.registry.bump()
        self.stats.count("swaps")
        self._publish_snapshot()

    def register_bundles(self, bundles: list[DataBundle]) -> int:
        """Intake new bundles as one transaction (all land or none do)."""
        with self._write_txn():
            count = self.service.register_bundles(bundles)
        self.registry.bump()
        self.stats.count("swaps")
        self._publish_snapshot()
        return count

    def swap_models(self, **models) -> ModelSnapshot:
        """Publish retrained models (see :meth:`ModelRegistry.swap`)."""
        snapshot = self.registry.swap(**models)
        self.stats.count("swaps")
        self._publish_snapshot()
        return snapshot

    def override(self, actor: User, ref_no: str, error_code: str,
                 reason: str = "") -> dict:
        """Pin an error code to a bundle transactionally.

        The new snapshot carries the refreshed override map, so worker
        processes and replicas serve the pin from the next version on.
        """
        with self._write_txn():
            record = self.service.apply_override(actor, ref_no, error_code,
                                                 reason)
            overrides = self.service.overrides.active_map()
        self.stats.count("overrides")
        self.registry.bump(overrides=overrides)
        self.stats.count("swaps")
        self._publish_snapshot()
        return record

    def claim_review(self, actor: User,
                     ref_no: str | None = None) -> dict | None:
        """Claim a review entry (queue state changes; models do not)."""
        with self._write_txn():
            entry = self.service.claim_review(actor, ref_no)
        self.stats.count("reviews")
        return entry

    def resolve_review(self, actor: User, ref_no: str, resolution: str,
                       error_code: str | None = None,
                       reason: str = "") -> dict:
        """Resolve a review entry; an ``override`` resolution pins the
        code and republishes the snapshot like :meth:`override`."""
        with self._write_txn():
            outcome = self.service.resolve_review(actor, ref_no, resolution,
                                                  error_code, reason)
            overrides = self.service.overrides.active_map()
        self.stats.count("reviews")
        if resolution == "override":
            self.stats.count("overrides")
            self.registry.bump(overrides=overrides)
            self.stats.count("swaps")
            self._publish_snapshot()
        return outcome

    # ------------------------------------------------------------------ #
    # process worker pool

    @property
    def pool_active(self) -> bool:
        """Whether a process worker pool is currently serving."""
        return self._pool is not None

    def _make_pool(self) -> ProcessWorkerPool | None:
        """Build + start the process pool, or fall back to thread mode.
        Any startup failure (missing ``fork``/``spawn``, an unpicklable
        model, a dead child) degrades to the in-process path instead of
        taking the gateway down."""
        procs = self.config.worker_procs or min(8, max(2, os.cpu_count()
                                                       or 2))
        try:
            payload = self._export_payload()
            self.registry.retain_payload(payload)
            pool = ProcessWorkerPool(payload, procs=procs)
            pool.start()
            return pool
        except Exception:
            self.stats.count("pool_fallbacks")
            return None

    def _export_payload(self) -> dict:
        """Export the current snapshot from a committed MVCC version.

        The read view pins the relstore rows the export reads; the lock's
        read side is still taken around the model walk because the
        knowledge base's node cache is write-through and unversioned — a
        concurrent writer could otherwise mutate it mid-export.  Export
        sites sit off the request path (pool seeding, post-write
        publishes, replica polls), so holding the read side here never
        stalls serving reads.
        """
        with self.service.database.read_view():
            with self.registry.store_lock.read_locked():
                return self.registry.current().to_payload()

    def _publish_snapshot(self) -> None:
        """Ship the current snapshot to the worker pool after a write.

        On any export/publish failure the workers keep their previous
        payload and stale-reject batches for the new version — the
        gateway then serves those in-process, so a failed publish can
        never produce a stale answer."""
        pool = self._pool
        if pool is None:
            return
        try:
            payload = self._export_payload()
            self.registry.retain_payload(payload)
            pool.publish(payload)
        except Exception:
            return
        self.stats.count("publishes")

    # ------------------------------------------------------------------ #
    # replication (primary side)

    def replication_payload(self, base_version: int | None) -> dict:
        """Answer one replica poll: a delta against *base_version* when
        possible, a full payload otherwise, or a ``"current"`` marker
        when the replica is already caught up.

        Exports are made on demand (and retained in the registry) at poll
        time, so thread-mode primaries — which never export on the write
        path — pay the export cost at most once per version per poll
        cycle; the previous poll's retained export is the next delta
        base.
        """
        registry = self.registry
        full = registry.retained_payload(registry.version)
        if full is None:
            full = self._export_payload()
            registry.retain_payload(full)
        if base_version == full["version"]:
            return {"format": PAYLOAD_FORMAT, "kind": "current",
                    "version": full["version"]}
        if base_version is not None and base_version < full["version"]:
            base = registry.retained_payload(base_version)
            if base is not None:
                try:
                    delta = diff_payloads(base, full)
                except SnapshotPayloadError:
                    delta = None
                if delta is not None:
                    return delta
        return full

    def _disable_pool(self, pool: ProcessWorkerPool) -> None:
        """Fall back to thread mode permanently — but only when the pool
        really is broken; a transient :class:`BrokenProcessPool` during a
        respawn window just means *this* batch serves in-process."""
        if not pool.broken:
            return
        with self._pool_lock:
            if self._pool is not pool:
                return
            self._pool = None
        self.stats.count("pool_fallbacks")
        try:
            pool.stop()
        except Exception:
            pass

    def _pool_classify(self, snapshot: ModelSnapshot,
                       live: list[SuggestRequest],
                       bundles: dict) -> dict:
        """Classify the batch's un-memoized refs on the process pool.

        Returns ``{ref_no: Recommendation}`` for whatever the pool
        answered healthily; every ref it could not answer (stale worker,
        crash, expiry in transit, classification error) is simply absent
        and falls through to the in-process retry/degraded path.
        """
        pool = self._pool
        if pool is None:
            return {}
        deadlines: dict[str, float | None] = {}
        for request in live:
            ref = request.ref_no
            bundle = bundles.get(ref)
            if bundle is None or isinstance(bundle, Exception):
                continue
            if ref in snapshot.overrides:
                continue  # the pin answers; no classification needed
            if self._recall_recommendation(snapshot, ref) is not None:
                continue
            if ref not in deadlines:
                deadlines[ref] = request.deadline
            elif deadlines[ref] is not None:
                # None means "no deadline" — it absorbs any finite value,
                # so duplicate refs get the *loosest* deadline in the batch.
                deadlines[ref] = (None if request.deadline is None
                                  else max(deadlines[ref], request.deadline))
        if not deadlines:
            return {}
        items = [WorkItem(ref_no=ref, part_id=bundles[ref].part_id,
                          document=test_document(
                              bundles[ref].without_label()),
                          deadline=deadline)
                 for ref, deadline in deadlines.items()]
        try:
            outcomes = pool.classify_batch(items, version=snapshot.version)
        except WorkerCrashError:
            self.stats.count("worker_crashes")
            return {}
        except BrokenProcessPool:
            self._disable_pool(pool)
            return {}
        self.stats.count("proc_batches")
        precomputed, stale = {}, 0
        for item, outcome in zip(items, outcomes):
            if outcome[0] == "ok":
                precomputed[item.ref_no] = outcome[1]
            elif outcome[0] == "stale":
                stale += 1
        if stale:
            self.stats.count("stale_rejected", stale)
        if precomputed:
            self.stats.count("proc_requests", len(precomputed))
        return precomputed

    # ------------------------------------------------------------------ #
    # introspection

    def stats_snapshot(self) -> dict:
        """Counters + latency percentiles + live queue/pool state."""
        payload = self.stats.snapshot()
        payload["queue_depth"] = len(self._queue)
        payload["queue_capacity"] = self.config.max_queue
        payload["workers"] = self.config.workers
        payload["max_batch_size"] = self.config.max_batch_size
        payload["model_version"] = self.registry.version
        payload["worker_mode"] = self.config.worker_mode
        pool = self._pool
        payload["pool_active"] = pool is not None
        if pool is not None:
            payload["pool"] = dict(pool.stats_snapshot(), procs=pool.procs)
        return payload

    # ------------------------------------------------------------------ #
    # worker pool

    def _worker_loop(self) -> None:
        while not self._stop_event.is_set():
            batch = self._queue.get_batch(self.config.max_batch_size,
                                          self.config.max_wait_ms / 1000.0)
            if not batch:
                if self._queue.closed and self._stop_event.is_set():
                    return
                continue
            with self._inflight_lock:
                self._inflight += len(batch)
            try:
                self._process_batch(batch)
            except Exception as exc:
                # A batcher thread must survive anything _process_batch
                # throws: reject whatever the batch left unresolved (the
                # callers would otherwise block until their timeout) and
                # keep serving.
                self.stats.count("batch_failures")
                for request in batch:
                    if not request.resolved:
                        request.reject(exc)
                        self.stats.count("failed")
            finally:
                with self._inflight_lock:
                    self._inflight -= len(batch)

    def _process_batch(self, batch: list[SuggestRequest]) -> None:
        """Serve one micro-batch as a single pass over the caches."""
        self.stats.count("batches")
        self.stats.count("batched_requests", len(batch))
        live: list[SuggestRequest] = []
        for request in batch:
            if request.abandoned:
                continue  # caller already raised DeadlineExceededError
            if request.expired:
                request.reject(DeadlineExceededError(
                    f"suggest({request.ref_no!r}) expired in the queue"))
                self.stats.count("deadline_exceeded")
                continue
            live.append(request)
        if not live:
            return
        snapshot = self.registry.current()
        bundles, features, codes, persist_views = {}, {}, {}, []
        # Bundle loads are pure relstore reads: a pinned read view gives
        # the whole batch one committed snapshot without making a
        # concurrent writer wait (or waiting on one), where the old
        # RWLock read side did both.
        with self.service.database.read_view():
            for request in live:
                ref = request.ref_no
                if ref in bundles:
                    continue
                try:
                    bundles[ref] = self._load_bundle(snapshot, ref)
                except Exception as exc:
                    bundles[ref] = exc
        try:
            precomputed = self._pool_classify(snapshot, live, bundles)
        except Exception:
            # A pool-path surprise must degrade to in-process serving for
            # this batch, never escape and kill the batcher thread.
            self.stats.count("pool_errors")
            precomputed = {}
        for request in live:
            bundle = bundles[request.ref_no]
            if isinstance(bundle, Exception):
                request.reject(bundle)
                self.stats.count("failed")
                continue
            if request.expired:  # e.g. while the pool batch was in flight
                request.reject(DeadlineExceededError(
                    f"suggest({request.ref_no!r}) expired while batched"))
                self.stats.count("deadline_exceeded")
                continue
            try:
                view = self._serve_one(snapshot, bundle, features, codes,
                                       precomputed.get(request.ref_no))
            except Exception as exc:
                request.reject(exc)
                self.stats.count("failed")
                continue
            if (self.config.persist and view.degraded is None
                    and view.source != "override"
                    and self._should_persist(snapshot, bundle.ref_no)):
                persist_views.append(view)
            request.resolve(view)
            self.stats.record_completion(time.monotonic()
                                         - request.enqueued_at)
        if persist_views:
            with self._write_txn():
                store_recommendations(
                    self.service.database,
                    [view.suggestions for view in persist_views])
                # Low-confidence suggestions enter the review queue, as
                # the bare service's persisting suggest() does.
                threshold = self.service.review_threshold
                for view in persist_views:
                    if (view.confidence is not None
                            and view.confidence.score < threshold):
                        self.service.review_queue.enqueue(
                            view.bundle.ref_no, view.bundle.part_id,
                            view.confidence.score)

    # ------------------------------------------------------------------ #
    # per-request classification with retry + degraded fallback

    def _serve_one(self, snapshot: ModelSnapshot, bundle: DataBundle,
                   features: dict, codes: dict,
                   precomputed=None) -> SuggestionView:
        """Classify one live request; retry once, then degrade.

        *features*/*codes* are the batch-local views of the memo tables —
        duplicate refs and same-part requests in the batch reuse them.
        *precomputed* is a recommendation the process pool already
        produced under this snapshot version (byte-identical to what
        :meth:`_classify_one` would compute); when present the in-process
        classification is skipped entirely.
        """
        degraded = None
        pinned = snapshot.overrides.get(bundle.ref_no)
        if pinned is not None:
            # An engineer's pin wins over the classifier: no memo, no
            # classification, no persistence — exactly what the bare
            # service's suggest() answers for an overridden bundle.
            recommendation = override_recommendation(bundle.ref_no,
                                                     bundle.part_id, pinned)
            self.stats.count("override_hits")
        else:
            recommendation = self._recall_recommendation(snapshot,
                                                         bundle.ref_no)
            if recommendation is None:
                if precomputed is not None:
                    recommendation = precomputed
                else:
                    try:
                        recommendation = self._classify_one(snapshot, bundle,
                                                            features)
                    except Exception as first:
                        self.stats.count("retried")
                        try:
                            recommendation = self._classify_one(
                                snapshot, bundle, features)
                        except Exception:
                            recommendation, degraded = self._degraded_one(
                                snapshot, bundle, first)
                            self.stats.count("degraded")
                if degraded is None:
                    # Healthy answers are deterministic per snapshot (writes
                    # install a new one, resetting this memo), so repeat
                    # traffic skips classification entirely.
                    with self._memo_lock:
                        if self._memo_snapshot is snapshot:
                            self._rec_memo[bundle.ref_no] = recommendation
            else:
                self.stats.count("memo_hits")
        all_codes = codes.get(bundle.part_id)
        if all_codes is None:
            with self.service.database.read_view():
                all_codes = self._full_code_list(snapshot, bundle.part_id)
            codes[bundle.part_id] = all_codes
        if pinned is not None:
            return SuggestionView(bundle=bundle, suggestions=recommendation,
                                  all_codes=all_codes, degraded=None,
                                  confidence=OVERRIDE_CONFIDENCE,
                                  source="override")
        return SuggestionView(bundle=bundle, suggestions=recommendation,
                              all_codes=all_codes, degraded=degraded,
                              confidence=score_confidence(recommendation),
                              source="classifier")

    def _classify_one(self, snapshot: ModelSnapshot, bundle: DataBundle,
                      features: dict):
        """One classification against the snapshot (fault-injection point:
        the tier-2 suite wraps this with slow/flaky plans)."""
        feats = features.get(bundle.ref_no)
        if feats is None:
            feats = self._extract_features(snapshot, bundle)
            features[bundle.ref_no] = feats
        # Classification walks the knowledge base's write-through node
        # cache, which is not MVCC-versioned — the lock's read side stays
        # here (only) to exclude a writer mutating that cache mid-walk.
        with self.registry.store_lock.read_locked():
            return snapshot.classifier.rank_codes(bundle.part_id, feats,
                                                  ref_no=bundle.ref_no)

    def _degraded_one(self, snapshot: ModelSnapshot, bundle: DataBundle,
                      cause: Exception):
        """PR 2's degraded chain, against the snapshot's models:
        stored suggestion -> BoW fallback -> frequency baseline."""
        with self.service.database.read_view():
            stored = self.service.stored_suggestion(bundle.ref_no)
        if stored is not None:
            return stored, "stored"
        if snapshot.fallback_classifier is not None:
            try:
                with self.registry.store_lock.read_locked():
                    return (snapshot.fallback_classifier.classify_bundle(
                        bundle.without_label()), "fallback")
            except Exception:
                pass  # fall through to the frequency baseline
        try:
            recommendation = snapshot.frequency_baseline.classify_bundle(
                bundle.without_label())
        except Exception as exc:
            raise DegradedServiceError(
                f"classifier failed for {bundle.ref_no!r} ({cause!r}) and "
                f"no fallback succeeded") from exc
        if not recommendation.codes:
            raise DegradedServiceError(
                f"classifier failed for {bundle.ref_no!r} ({cause!r}) and "
                f"no fallback produced any suggestion") from cause
        return recommendation, "frequency"

    # ------------------------------------------------------------------ #
    # version-keyed memos

    def _memo_tables(self, snapshot: ModelSnapshot):
        """The memo dicts for *snapshot*, resetting them on snapshot change
        or overflow.  Caller must hold no memo references across writes."""
        with self._memo_lock:
            if self._memo_snapshot is not snapshot:
                self._memo_snapshot = snapshot
                self._bundle_memo = {}
                self._feature_memo = {}
                self._codes_memo = {}
                self._rec_memo = {}
                self._persisted_refs = set()
            elif (len(self._bundle_memo) > self.config.memo_size
                    or len(self._feature_memo) > self.config.memo_size
                    or len(self._rec_memo) > self.config.memo_size):
                self._bundle_memo = {}
                self._feature_memo = {}
                self._codes_memo = {}
                self._rec_memo = {}
            return (self._bundle_memo, self._feature_memo, self._codes_memo)

    def _recall_recommendation(self, snapshot: ModelSnapshot, ref_no: str):
        """A healthy recommendation already computed under this snapshot
        version, or ``None``.  Never returns degraded answers — those are
        transient and recomputed on every request."""
        self._memo_tables(snapshot)
        with self._memo_lock:
            if self._memo_snapshot is not snapshot:
                return None
            return self._rec_memo.get(ref_no)

    def _load_bundle(self, snapshot: ModelSnapshot, ref_no: str) -> DataBundle:
        bundle_memo, _, _ = self._memo_tables(snapshot)
        bundle = bundle_memo.get(ref_no)
        if bundle is None:
            bundle = self.service.bundle(ref_no)
            if bundle is None:
                raise UnknownBundleError(f"no bundle {ref_no!r}")
            with self._memo_lock:
                bundle_memo[ref_no] = bundle
        return bundle

    def _extract_features(self, snapshot: ModelSnapshot,
                          bundle: DataBundle) -> frozenset[str]:
        _, feature_memo, _ = self._memo_tables(snapshot)
        feats = feature_memo.get(bundle.ref_no)
        if feats is None:
            feats = snapshot.classifier.extractor.extract_text(
                test_document(bundle.without_label()))
            with self._memo_lock:
                feature_memo[bundle.ref_no] = feats
        return feats

    def _full_code_list(self, snapshot: ModelSnapshot,
                        part_id: str) -> list[str]:
        _, _, codes_memo = self._memo_tables(snapshot)
        all_codes = codes_memo.get(part_id)
        if all_codes is None:
            # Same merge as QuestService.full_code_list, but ranking with
            # the *snapshot's* frequency baseline so a model swap changes
            # what is served without touching the service.
            ranked = [scored.error_code for scored in
                      snapshot.frequency_baseline.ranked_codes(part_id)]
            custom = [row["error_code"]
                      for row in self.service.custom_codes(part_id)]
            all_codes = ranked + [code for code in custom
                                  if code not in ranked]
            with self._memo_lock:
                codes_memo[part_id] = all_codes
        return all_codes

    def _should_persist(self, snapshot: ModelSnapshot, ref_no: str) -> bool:
        """Persist each ref's healthy recommendation once per snapshot."""
        with self._memo_lock:
            if self._memo_snapshot is not snapshot:
                return True  # a write raced this batch; persist to be safe
            if ref_no in self._persisted_refs:
                return False
            self._persisted_refs.add(ref_no)
            return True

    def __repr__(self) -> str:
        return (f"<ServeGateway workers={self.config.workers} "
                f"queue={len(self._queue)}/{self.config.max_queue} "
                f"version={self.registry.version}>")
