"""repro.serve — the concurrent serving gateway (queue, batcher, workers).

The layer between transports (web app, CLI, load generator) and the QUEST
service: bounded admission control, dynamic micro-batching over the
candidate-retrieval cache, a fixed worker pool with deadlines and degraded
fallback, an atomically swappable model registry with a reader-writer lock
around relstore mutations, and serving statistics.  See docs/serving.md.
"""

from .errors import (DeadlineExceededError, GatewayStoppedError,
                     QueueFullError, ReplicaWriteError, ServeError,
                     SnapshotPayloadError, StaleSnapshotError,
                     WorkerCrashError)
from .gateway import DrainReport, GatewayConfig, ServeGateway, WORKER_MODES
from .httpclient import ClientResponse, HTTPClientError, PooledHTTPClient
from .locks import RWLock
from .procpool import (BrokenProcessPool, PoolStats, ProcessWorkerPool,
                       WorkItem)
from .queue import RequestQueue, SuggestRequest
from .registry import (PAYLOAD_RETENTION, ModelRegistry, ModelSnapshot,
                       apply_payload_delta, diff_payloads)
from .replica import (REPLICATION_INTERVAL, REPLICATION_TIMEOUT,
                      SnapshotReplicator)
from .stats import ServeStats, percentile


def __getattr__(name: str):
    # AsyncQuestServer is exported lazily: aio.py imports the quest
    # webapp at module level, and pulling it in eagerly here would close
    # an import cycle through quest/__init__ for any consumer that
    # imports repro.quest first.
    if name == "AsyncQuestServer":
        from .aio import AsyncQuestServer
        return AsyncQuestServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AsyncQuestServer",
    "BrokenProcessPool",
    "ClientResponse",
    "DeadlineExceededError",
    "DrainReport",
    "GatewayConfig",
    "GatewayStoppedError",
    "HTTPClientError",
    "PooledHTTPClient",
    "ModelRegistry",
    "ModelSnapshot",
    "PAYLOAD_RETENTION",
    "PoolStats",
    "ProcessWorkerPool",
    "QueueFullError",
    "REPLICATION_INTERVAL",
    "REPLICATION_TIMEOUT",
    "RWLock",
    "ReplicaWriteError",
    "RequestQueue",
    "ServeError",
    "ServeGateway",
    "ServeStats",
    "SnapshotPayloadError",
    "SnapshotReplicator",
    "StaleSnapshotError",
    "SuggestRequest",
    "WORKER_MODES",
    "WorkItem",
    "WorkerCrashError",
    "apply_payload_delta",
    "diff_payloads",
    "percentile",
]
