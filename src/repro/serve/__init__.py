"""repro.serve — the concurrent serving gateway (queue, batcher, workers).

The layer between transports (web app, CLI, load generator) and the QUEST
service: bounded admission control, dynamic micro-batching over the
candidate-retrieval cache, a fixed worker pool with deadlines and degraded
fallback, an atomically swappable model registry with a reader-writer lock
around relstore mutations, and serving statistics.  See docs/serving.md.
"""

from .errors import (DeadlineExceededError, GatewayStoppedError,
                     QueueFullError, ServeError)
from .gateway import DrainReport, GatewayConfig, ServeGateway
from .locks import RWLock
from .queue import RequestQueue, SuggestRequest
from .registry import ModelRegistry, ModelSnapshot
from .stats import ServeStats, percentile

__all__ = [
    "DeadlineExceededError",
    "DrainReport",
    "GatewayConfig",
    "GatewayStoppedError",
    "ModelRegistry",
    "ModelSnapshot",
    "QueueFullError",
    "RWLock",
    "RequestQueue",
    "ServeError",
    "ServeGateway",
    "ServeStats",
    "SuggestRequest",
    "percentile",
]
