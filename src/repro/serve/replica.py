"""Snapshot replication: read replicas pulling models from a primary.

Horizontal read scale-out for the serving stack (the ROADMAP's "millions
of users" direction): one **primary** ``QuestServer`` owns every write;
any number of **replica** gateways serve reads from replicated
:class:`~repro.serve.registry.ModelSnapshot`\\ s and refuse writes with
HTTP 405 pointing at the primary.

The wire protocol reuses the process-pool payload format (PR 4) over the
pooled keep-alive client (PR 5):

* a replica polls ``GET /api/replicate?base=<version>`` on the primary
  every ``interval`` seconds (``base`` omitted until the first payload
  lands);
* the primary answers with a pickled **delta** payload
  (:func:`~repro.serve.registry.diff_payloads`) when the replica's base
  version is one of its retained exports, a pickled **full** payload
  otherwise, or a tiny ``{"kind": "current"}`` marker when the replica
  is already at the primary's version;
* the replica applies deltas with
  :func:`~repro.serve.registry.apply_payload_delta`, rebuilds the
  snapshot, and :meth:`~repro.serve.registry.ModelRegistry.install`\\ s
  it — version numbers are the *primary's*, so ``/api/stats`` can report
  convergence (``replica_version`` vs ``primary_version``).

Failure is a first-class state, not an exception path: a replica that
cannot reach its primary keeps serving the last snapshot it holds and
surfaces the gap as ``staleness_seconds`` plus a ``replication_failed``
counter.  A delta that no longer matches the held base (primary
restarted, retention evicted the base) drops the held payload so the
next poll requests a full payload — the replica converges instead of
wedging.

The payloads travel as pickles, exactly like the process-pool pipe
traffic they reuse; replication therefore assumes the same trust
boundary as the rest of the serving cluster (do not point a replica at
an untrusted primary).

Replication is transport-independent: both ends speak plain HTTP/1.1
through :class:`~repro.serve.PooledHTTPClient`, so a primary or replica
may run on either the threaded ``QuestServer`` or the event-loop
``AsyncQuestServer`` (``serve --transport=async``) in any combination —
the async primary serves ``/api/replicate`` straight off its event loop.
"""

from __future__ import annotations

import pickle
import threading
import time

from .errors import SnapshotPayloadError
from .httpclient import HTTPClientError, PooledHTTPClient
from .registry import ModelRegistry, ModelSnapshot, apply_payload_delta

#: Default seconds between replica polls of the primary.
REPLICATION_INTERVAL = 1.0

#: Default per-poll request timeout (seconds).
REPLICATION_TIMEOUT = 5.0


class SnapshotReplicator:
    """Background poller keeping one replica registry in sync.

    Args:
        registry: the replica's :class:`ModelRegistry`; every applied
            payload is installed here (the serving gateway reads it).
        primary_url: base URL of the primary gateway, e.g.
            ``http://primary:8080``.
        interval: seconds between polls of ``/api/replicate``.
        timeout: per-poll socket timeout.
        client: a shared :class:`PooledHTTPClient`; one is created (and
            owned, i.e. closed by :meth:`stop`) when omitted.
    """

    def __init__(self, registry: ModelRegistry, primary_url: str, *,
                 interval: float = REPLICATION_INTERVAL,
                 timeout: float = REPLICATION_TIMEOUT,
                 client: PooledHTTPClient | None = None) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.registry = registry
        self.primary_url = primary_url.rstrip("/")
        self.interval = interval
        self.timeout = timeout
        self._own_client = client is None
        self._client = client if client is not None else PooledHTTPClient(
            max_per_host=1, timeout=timeout)
        self._lock = threading.Lock()
        #: The last full payload successfully applied (None until the
        #: first sync); its version is the base we poll with.
        self._payload: dict | None = None
        self._primary_version = 0
        self._last_sync: float | None = None
        self._started_at = time.monotonic()
        self._counters = {"replication_full": 0, "replication_delta": 0,
                          "replication_current": 0, "replication_failed": 0}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # one poll

    def poll_once(self) -> str:
        """Poll the primary once; returns the outcome kind.

        ``"full"``/``"delta"`` — a payload was applied and installed;
        ``"current"`` — already at the primary's version; ``"failed"`` —
        the primary was unreachable or answered garbage (the replica
        keeps its current snapshot either way).
        """
        with self._lock:
            base = (self._payload["version"] if self._payload is not None
                    else None)
        url = self.primary_url + "/api/replicate"
        if base is not None:
            url += f"?base={base}"
        try:
            response = self._client.get(url, timeout=self.timeout)
            if response.status != 200:
                raise HTTPClientError(
                    f"replication poll answered HTTP {response.status}")
            message = pickle.loads(response.body)
            return self._apply_message(message)
        except SnapshotPayloadError:
            # The held base no longer lines up with what the primary
            # serves (restart, retention eviction, format change): drop
            # it so the next poll asks for a full payload.
            with self._lock:
                self._payload = None
                self._counters["replication_failed"] += 1
            return "failed"
        except Exception:
            with self._lock:
                self._counters["replication_failed"] += 1
            return "failed"

    def _apply_message(self, message) -> str:
        """Install one replication response; returns its outcome kind."""
        if not isinstance(message, dict):
            raise SnapshotPayloadError(
                f"replication response is not a payload dict: "
                f"{type(message).__name__}")
        kind = message.get("kind")
        if kind == "current":
            with self._lock:
                self._primary_version = message["version"]
                self._last_sync = time.monotonic()
                self._counters["replication_current"] += 1
            return "current"
        if kind == "delta":
            with self._lock:
                held = self._payload
            if held is None:
                raise SnapshotPayloadError(
                    "primary sent a delta but no base payload is held")
            full = apply_payload_delta(held, message)
        elif kind == "full":
            full = message
        else:
            raise SnapshotPayloadError(
                f"unexpected replication payload kind {kind!r}")
        # Rebuild before installing: a payload that cannot build a
        # snapshot must not clobber the one we are serving.
        snapshot = ModelSnapshot.from_payload(full)
        self.registry.install(snapshot)
        with self._lock:
            self._payload = full
            self._primary_version = full["version"]
            self._last_sync = time.monotonic()
            self._counters["replication_delta" if kind == "delta"
                           else "replication_full"] += 1
        return kind

    # ------------------------------------------------------------------ #
    # the poll loop

    def start(self) -> None:
        """Start the background poll loop (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(target=self._run, daemon=True,
                                            name="snapshot-replicator")
            self._thread.start()

    def _run(self) -> None:
        while True:
            self.poll_once()
            if self._stop.wait(self.interval):
                return

    def stop(self) -> None:
        """Stop the loop and close an owned client (idempotent)."""
        with self._lock:
            thread, self._thread = self._thread, None
        self._stop.set()
        if thread is not None:
            thread.join(timeout=max(self.timeout, self.interval) + 1.0)
        if self._own_client:
            self._client.close()

    def __enter__(self) -> "SnapshotReplicator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # introspection

    @property
    def running(self) -> bool:
        """Whether the poll loop is active."""
        with self._lock:
            return self._thread is not None

    def synced_version(self) -> int:
        """The version of the last applied payload (0 before any sync)."""
        with self._lock:
            return self._payload["version"] if self._payload else 0

    def staleness_seconds(self) -> float:
        """Seconds since the last successful poll (since construction
        when none has succeeded yet) — the replica's staleness bound."""
        with self._lock:
            reference = (self._last_sync if self._last_sync is not None
                         else self._started_at)
        return max(0.0, time.monotonic() - reference)

    def stats_snapshot(self) -> dict:
        """Replication counters + convergence state, merged into the
        replica's ``/api/stats`` payload by the web app."""
        with self._lock:
            payload = {
                "replica_version": (self._payload["version"]
                                    if self._payload else 0),
                "primary_version": self._primary_version,
                "replication_interval": self.interval,
                "replication_running": self._thread is not None,
                **self._counters,
            }
            reference = (self._last_sync if self._last_sync is not None
                         else self._started_at)
        payload["staleness_seconds"] = round(
            max(0.0, time.monotonic() - reference), 3)
        return payload

    def __repr__(self) -> str:
        return (f"<SnapshotReplicator primary={self.primary_url} "
                f"version={self.synced_version()} "
                f"interval={self.interval:g}s>")
