"""The bounded request queue behind the gateway's admission control.

Two jobs:

* **Admission control** — :meth:`RequestQueue.put` never blocks and never
  grows the backlog past ``maxsize``: a full queue raises
  :class:`~repro.serve.errors.QueueFullError` immediately, so overload
  turns into fast 503s instead of unbounded memory growth and collapse.
* **Micro-batch coalescing** — :meth:`RequestQueue.get_batch` hands a
  worker up to ``max_batch`` requests, waiting at most ``max_wait``
  seconds after the first arrival for stragglers to coalesce.  Under load
  batches fill instantly; when idle a lone request only pays the short
  coalescing window.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from .errors import DeadlineExceededError, GatewayStoppedError, QueueFullError


@dataclass
class SuggestRequest:
    """One in-flight ``suggest`` call travelling through the gateway."""

    ref_no: str
    #: Absolute monotonic deadline, or None for no deadline.
    deadline: float | None = None
    enqueued_at: float = field(default_factory=time.monotonic)
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)
    _result: Any = field(default=None, repr=False)
    _error: BaseException | None = field(default=None, repr=False)
    _abandoned: bool = field(default=False, repr=False)

    # -------------------------------------------------------------- #
    # worker side

    @property
    def expired(self) -> bool:
        """Whether the deadline has already passed."""
        return self.deadline is not None and time.monotonic() > self.deadline

    @property
    def abandoned(self) -> bool:
        """Whether the caller gave up waiting (worker may skip the work)."""
        return self._abandoned

    @property
    def resolved(self) -> bool:
        """Whether an answer (result or error) has been delivered."""
        return self._done.is_set()

    def resolve(self, result: Any) -> None:
        """Deliver a successful result to the waiting caller."""
        self._result = result
        self._done.set()

    def reject(self, error: BaseException) -> None:
        """Deliver a failure to the waiting caller."""
        self._error = error
        self._done.set()

    # -------------------------------------------------------------- #
    # caller side

    def wait(self, timeout: float | None = None) -> Any:
        """Block until resolved; raises the rejection error or, on a local
        wait timeout, marks the request abandoned and raises
        :class:`DeadlineExceededError`."""
        if not self._done.wait(timeout):
            self._abandoned = True
            raise DeadlineExceededError(
                f"suggest({self.ref_no!r}) exceeded its deadline")
        if self._error is not None:
            raise self._error
        return self._result


class RequestQueue:
    """A bounded FIFO of :class:`SuggestRequest` with batch dequeue."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._cond = threading.Condition(threading.Lock())
        self._items: deque[SuggestRequest] = deque()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        """Whether the queue stopped accepting work (shutdown)."""
        return self._closed

    # -------------------------------------------------------------- #
    # producer side

    def put(self, request: SuggestRequest) -> None:
        """Enqueue without blocking.

        Raises:
            QueueFullError: the backlog is at ``maxsize`` (load shed).
            GatewayStoppedError: the queue is closed (shutdown).
        """
        with self._cond:
            if self._closed:
                raise GatewayStoppedError("gateway is shutting down")
            if len(self._items) >= self.maxsize:
                raise QueueFullError(
                    f"request queue full ({self.maxsize} pending)")
            self._items.append(request)
            self._cond.notify()

    # -------------------------------------------------------------- #
    # consumer side

    def get_batch(self, max_batch: int, max_wait: float,
                  poll: float = 0.1) -> list[SuggestRequest]:
        """Dequeue up to *max_batch* requests as one micro-batch.

        Blocks up to *poll* seconds for the first request (returning an
        empty list so the worker loop can check for shutdown), then keeps
        coalescing arrivals for at most *max_wait* seconds or until the
        batch is full.
        """
        with self._cond:
            if not self._items:
                self._cond.wait(poll)
                if not self._items:
                    return []
            coalesce_until = time.monotonic() + max_wait
            while len(self._items) < max_batch and not self._closed:
                remaining = coalesce_until - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            batch = [self._items.popleft()
                     for _ in range(min(max_batch, len(self._items)))]
            self._cond.notify_all()
            return batch

    # -------------------------------------------------------------- #
    # shutdown

    def close(self) -> None:
        """Stop accepting new work; wakes every waiter."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list[SuggestRequest]:
        """Remove and return every still-queued request (for rejection)."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            self._cond.notify_all()
            return items

    def __repr__(self) -> str:
        return (f"<RequestQueue {len(self)}/{self.maxsize}"
                f"{' closed' if self._closed else ''}>")
