"""The process-based serving worker pool (real cores for classification).

The gateway's batcher threads are great at overlapping I/O-ish work, but
classification is pure Python: under the GIL a thread pool never uses
more than one core.  ``ProcessWorkerPool`` moves the CPU-heavy half of a
micro-batch — feature extraction + candidate scoring — into worker
*processes*:

* **Snapshot seeding, not re-forking.**  Each worker is seeded once with
  a pickled read-only :meth:`ModelSnapshot.to_payload` export (knowledge
  rows with their row ids, the feature extractor, classifier config and
  frequency table).  On every version bump the primary ships only a
  **delta** (row upserts/removals + the small frequency table) — or a
  full payload when the delta would not be smaller or the worker's base
  does not match — so publishing a write costs kilobytes, not a fork.
* **Absolute deadlines.**  Every work item carries its request's
  monotonic deadline; workers skip items that expired in transit
  (``CLOCK_MONOTONIC`` is system-wide on Linux, so the comparison is
  valid across processes).
* **Stale-version rejection.**  A task names the snapshot version it must
  be served under.  A worker that has not (yet) received that version
  answers ``stale`` instead of serving old models; the primary then
  re-serves in-process against the current snapshot — stale answers are
  structurally impossible.
* **Crash containment.**  Worker death is detected via its process
  sentinel; in-flight tasks fail with :class:`WorkerCrashError` (the
  gateway retries in-process, then degrades — requests are never lost),
  and the worker is respawned and re-seeded.  When the pool cannot
  recover it raises :class:`BrokenProcessPool` and the gateway falls back
  to the in-process thread path for good.

Transport is one duplex :func:`multiprocessing.Pipe` per worker (plus the
process sentinel) — no semaphore is shared *between* workers, so killing
one worker can never wedge the others' queues.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import connection

from .errors import WorkerCrashError
from .registry import ModelSnapshot, apply_payload_delta, diff_payloads

__all__ = ["BrokenProcessPool", "PoolStats", "ProcessWorkerPool", "WorkItem"]

#: How long :meth:`ProcessWorkerPool.stop` waits for a worker to exit
#: voluntarily before terminating it.
STOP_GRACE = 2.0


@dataclass(frozen=True)
class WorkItem:
    """One classification item of a dispatched batch (all picklable)."""

    ref_no: str
    part_id: str
    #: The pre-built test document (the primary owns bundle loading; the
    #: worker owns extraction + scoring).
    document: str
    #: Absolute monotonic deadline, or None.
    deadline: float | None = None


@dataclass
class PoolStats:
    """Counters the gateway folds into its ``/stats`` payload."""

    dispatched_batches: int = 0
    dispatched_items: int = 0
    stale_rejections: int = 0
    worker_crashes: int = 0
    respawns: int = 0
    publishes: int = 0
    delta_publishes: int = 0
    full_publishes: int = 0


class _Worker:
    """Primary-side handle of one worker process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: multiprocessing.process.BaseProcess | None = None
        self.conn: connection.Connection | None = None
        self.send_lock = threading.Lock()
        #: The payload version last shipped to this worker (deltas are
        #: only valid against it).
        self.shipped_version: int | None = None
        self.dead = False

    def alive(self) -> bool:
        return (not self.dead and self.process is not None
                and self.process.is_alive())


@dataclass
class _PendingTask:
    """One dispatched batch awaiting its result."""

    worker_index: int
    done: threading.Event = field(default_factory=threading.Event)
    #: ("done", version, outcomes) | ("stale", version) | ("crash",)
    result: tuple | None = None


class ProcessWorkerPool:
    """A fixed pool of snapshot-seeded classification worker processes.

    Args:
        payload: the initial full snapshot payload every worker is seeded
            with (see :meth:`ModelSnapshot.to_payload`).
        procs: number of worker processes.
        start_method: multiprocessing start method; the default prefers
            ``forkserver`` (workers fork from a single-threaded server
            process) and falls back to ``spawn``, then ``fork``.  Plain
            ``fork`` is avoided because crashed workers are respawned
            from a primary that is multi-threaded by then (batcher
            threads + collector), and forking a multi-threaded CPython
            process can deadlock the child on an internal lock held at
            fork time.  Seeding is payload-based (shipped over the
            pipe), so the safe methods only cost interpreter startup.
    """

    def __init__(self, payload: dict, procs: int = 2,
                 start_method: str | None = None) -> None:
        if procs < 1:
            raise ValueError("procs must be >= 1")
        if payload.get("kind") != "full":
            raise ValueError("pool must be seeded with a full payload")
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = next(method for method
                                in ("forkserver", "spawn", "fork")
                                if method in methods)
        self._ctx = multiprocessing.get_context(start_method)
        self._payload = payload
        self._workers = [_Worker(index) for index in range(procs)]
        self._task_ids = itertools.count(1)
        self._pending: dict[int, _PendingTask] = {}
        self._lock = threading.Lock()        # workers + pending + rr state
        self._publish_lock = threading.Lock()
        self._rr = 0
        self._started = False
        self._stopping = False
        self._broken = False
        self._collector: threading.Thread | None = None
        self.stats = PoolStats()
        #: Test hook: worker indexes that version publishes skip (models a
        #: worker cut off from the replication stream).
        self.suppress_updates_to: set[int] = set()
        #: Test hook: milliseconds every worker sleeps before serving a
        #: batch (lets fault tests kill a worker provably mid-batch).
        self.debug_slow_ms: float = 0.0

    # ------------------------------------------------------------------ #
    # lifecycle

    @property
    def procs(self) -> int:
        return len(self._workers)

    @property
    def broken(self) -> bool:
        """True once the pool lost a worker it could not respawn."""
        return self._broken

    def start(self) -> None:
        """Spawn and seed the workers, and start the result collector."""
        with self._lock:
            if self._started:
                return
            self._started = True
            try:
                for worker in self._workers:
                    self._spawn(worker)
            except Exception as exc:
                self._broken = True
                raise BrokenProcessPool(
                    f"could not start worker pool: {exc!r}") from exc
        self._collector = threading.Thread(target=self._collect_loop,
                                           daemon=True,
                                           name="procpool-collector")
        self._collector.start()

    def _spawn(self, worker: _Worker) -> None:
        """(Re)start one worker and seed it with the current payload.
        Caller holds ``_lock``."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(target=_worker_main,
                                    args=(worker.index, child_conn),
                                    daemon=True,
                                    name=f"serve-proc-{worker.index}")
        process.start()
        child_conn.close()  # the child owns its end now
        worker.process = process
        worker.conn = parent_conn
        worker.dead = False
        worker.conn.send(("snapshot", self._payload))
        worker.shipped_version = self._payload["version"]

    def stop(self) -> None:
        """Stop every worker (politely, then by force) and the collector."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            workers = list(self._workers)
        for worker in workers:
            if worker.conn is not None:
                try:
                    with worker.send_lock:
                        worker.conn.send(("stop",))
                except (OSError, ValueError, BrokenPipeError):
                    pass
        deadline = time.monotonic() + STOP_GRACE
        for worker in workers:
            if worker.process is None:
                continue
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        for worker in workers:
            if worker.conn is not None:
                worker.conn.close()
        if self._collector is not None:
            self._collector.join(timeout=2.0)
        # whatever was still pending can never complete
        with self._lock:
            for pending in self._pending.values():
                pending.result = ("crash",)
                pending.done.set()
            self._pending.clear()

    def __enter__(self) -> "ProcessWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # snapshot replication

    def publish(self, payload: dict) -> None:
        """Ship a new snapshot payload to every worker.

        Workers whose last-shipped version matches the delta's base get
        the delta; everyone else (fresh respawns, workers that missed an
        update) gets the full payload.  FIFO pipes guarantee a worker
        applies the update before any batch dispatched after this call.
        """
        if payload.get("kind") != "full":
            raise ValueError("publish() takes a full payload")
        with self._publish_lock:
            previous = self._payload
            if payload["version"] < previous["version"]:
                # Two racing gateway writes can export out of order; the
                # newer payload already landed, so installing this one
                # would pin the pool (and every respawn seed) on a stale
                # version and stale-reject all future batches.
                return
            # An equal-version call re-exports to workers that missed the
            # update (suppressed replication, respawn races); a newer one
            # also becomes the seed for future respawns.
            delta = (diff_payloads(previous, payload)
                     if payload["version"] > previous["version"] else None)
            self._payload = payload
            with self._lock:
                self.stats.publishes += 1
                live = [(worker, worker.conn) for worker in self._workers
                        if worker.alive() and worker.conn is not None]
            delta_sends = full_sends = 0
            for worker, conn in live:
                if worker.index in self.suppress_updates_to:
                    continue
                if worker.shipped_version == payload["version"]:
                    continue  # already holds this version
                if (delta is not None
                        and worker.shipped_version == delta["base_version"]):
                    message = ("delta", delta)
                    delta_sends += 1
                else:
                    message = ("snapshot", payload)
                    full_sends += 1
                try:
                    with worker.send_lock:
                        conn.send(message)
                    worker.shipped_version = payload["version"]
                except (OSError, ValueError, BrokenPipeError):
                    worker.dead = True  # collector will respawn + reseed
            with self._lock:
                self.stats.delta_publishes += delta_sends
                self.stats.full_publishes += full_sends

    # ------------------------------------------------------------------ #
    # dispatch

    def classify_batch(self, items: list[WorkItem], version: int,
                       timeout: float | None = None) -> list[tuple]:
        """Classify *items* on one worker under snapshot *version*.

        Returns one outcome tuple per item, aligned with *items*:
        ``("ok", Recommendation)``, ``("expired",)`` (deadline passed),
        ``("stale", worker_version)`` (the worker does not hold *version*
        — the caller must re-serve in-process) or ``("error", message)``.

        Raises:
            BrokenProcessPool: the pool is broken or stopped.
            WorkerCrashError: the worker died holding this batch (the
                caller should retry in-process; the pool respawns).
        """
        if not items:
            return []
        if not self._started:
            self.start()
        task_id = next(self._task_ids)
        with self._lock:
            if self._broken or self._stopping:
                raise BrokenProcessPool("worker pool is not serving")
            worker = self._pick_worker()
            conn = worker.conn
            pending = _PendingTask(worker_index=worker.index)
            self._pending[task_id] = pending
            self.stats.dispatched_batches += 1
            self.stats.dispatched_items += len(items)
        payload_items = [(item.ref_no, item.part_id, item.document,
                          item.deadline) for item in items]
        try:
            if conn is None:
                raise BrokenPipeError("worker connection gone")
            with worker.send_lock:
                conn.send(("batch", task_id, version, payload_items,
                           self.debug_slow_ms))
        except (OSError, ValueError, BrokenPipeError):
            with self._lock:
                worker.dead = True
                self._pending.pop(task_id, None)
            raise WorkerCrashError(
                f"worker {worker.index} died before accepting the batch")
        if timeout is None:
            deadlines = [item.deadline for item in items
                         if item.deadline is not None]
            timeout = (max(deadlines) - time.monotonic() + 0.25
                       if deadlines else 30.0)
        if not pending.done.wait(max(0.05, timeout)):
            with self._lock:
                self._pending.pop(task_id, None)
            return [("error", "pool task timed out")] * len(items)
        result = pending.result
        if result is None or result[0] == "crash":
            raise WorkerCrashError(
                f"worker {pending.worker_index} died mid-batch")
        if result[0] == "stale":
            with self._lock:
                self.stats.stale_rejections += 1
            return [("stale", result[1])] * len(items)
        outcomes = result[2]
        if len(outcomes) != len(items):  # defensive; should never happen
            return [("error", "worker returned a malformed batch")] * len(items)
        return outcomes

    def stats_snapshot(self) -> dict:
        """A consistent copy of the counters.  Every :class:`PoolStats`
        mutation happens under ``_lock``, so reading them under the same
        lock can never observe a torn or half-applied update."""
        with self._lock:
            return dataclasses.asdict(self.stats)

    def _pick_worker(self) -> _Worker:
        """Round-robin over live workers.  Caller holds ``_lock``."""
        for _ in range(len(self._workers)):
            worker = self._workers[self._rr % len(self._workers)]
            self._rr += 1
            if worker.alive():
                return worker
        raise BrokenProcessPool("no live worker process")

    # ------------------------------------------------------------------ #
    # result collection + crash handling

    def _collect_loop(self) -> None:
        while not self._stopping:
            with self._lock:
                conn_of = {worker.conn: worker for worker in self._workers
                           if worker.alive() and worker.conn is not None}
                sentinel_of = {worker.process.sentinel: worker
                               for worker in self._workers
                               if worker.alive() and worker.process is not None}
                suspects = [worker for worker in self._workers
                            if worker.dead or
                            (worker.process is not None
                             and not worker.process.is_alive())]
            for worker in suspects:
                self._handle_crash(worker)
            if not conn_of and not sentinel_of:
                time.sleep(0.02)
                continue
            try:
                ready = connection.wait(list(conn_of) + list(sentinel_of),
                                        timeout=0.1)
            except OSError:
                continue
            for obj in ready:
                if self._stopping:
                    return
                worker = conn_of.get(obj)
                if worker is not None:
                    try:
                        message = obj.recv()
                    except (EOFError, OSError):
                        self._handle_crash(worker)
                        continue
                    self._resolve(message)
                else:
                    crashed = sentinel_of.get(obj)
                    if crashed is not None and not crashed.process.is_alive():
                        self._handle_crash(crashed)

    def _resolve(self, message: tuple) -> None:
        kind = message[0]
        if kind == "done":
            _, task_id, version, outcomes = message
            result = ("done", version, outcomes)
        elif kind == "stale":
            _, task_id, version = message
            result = ("stale", version)
        else:
            return
        with self._lock:
            pending = self._pending.pop(task_id, None)
        if pending is not None:
            pending.result = result
            pending.done.set()

    def _handle_crash(self, worker: _Worker) -> None:
        """Fail the dead worker's in-flight tasks and respawn it."""
        with self._lock:
            if self._stopping or worker.alive():
                return
            worker.dead = True
            self.stats.worker_crashes += 1
            for task_id, pending in list(self._pending.items()):
                if pending.worker_index == worker.index:
                    del self._pending[task_id]
                    pending.result = ("crash",)
                    pending.done.set()
            if worker.conn is not None:
                try:
                    worker.conn.close()
                except OSError:
                    pass
                worker.conn = None
            # _spawn reads self._payload once (an atomic reference read);
            # racing a concurrent publish() at worst seeds the respawn
            # with the newer payload or double-ships one full payload.
            try:
                self._spawn(worker)
                self.stats.respawns += 1
            except Exception:
                self._broken = True
                for task_id, pending in list(self._pending.items()):
                    del self._pending[task_id]
                    pending.result = ("crash",)
                    pending.done.set()

    def __repr__(self) -> str:
        state = ("broken" if self._broken
                 else "stopping" if self._stopping
                 else "started" if self._started else "new")
        return (f"<ProcessWorkerPool procs={self.procs} {state} "
                f"version={self._payload['version']}>")


# ---------------------------------------------------------------------- #
# worker process


def _worker_main(index: int, conn) -> None:
    """Worker loop: hold a payload-built snapshot, serve batches.

    Messages (all tuples, first element is the kind):
    ``("snapshot", payload)`` full reseed; ``("delta", delta)`` applied
    only when the base version matches (otherwise the worker keeps its
    old payload and stale-rejects until a full payload arrives);
    ``("batch", task_id, version, items, slow_ms)`` classify;
    ``("stop",)`` exit.
    """
    payload: dict | None = None
    snapshot: ModelSnapshot | None = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        kind = message[0]
        if kind == "stop":
            return
        if kind == "snapshot":
            payload = message[1]
            snapshot = ModelSnapshot.from_payload(payload)
            continue
        if kind == "delta":
            delta = message[1]
            if (payload is not None
                    and payload["version"] == delta["base_version"]):
                payload = apply_payload_delta(payload, delta)
                snapshot = ModelSnapshot.from_payload(payload)
            # else: base mismatch — keep the old snapshot; tasks for the
            # new version will be stale-rejected, never served stale.
            continue
        if kind != "batch":
            continue
        _, task_id, version, items, slow_ms = message
        if slow_ms:
            time.sleep(slow_ms / 1000.0)
        if snapshot is None or snapshot.version != version:
            held = 0 if snapshot is None else snapshot.version
            try:
                conn.send(("stale", task_id, held))
            except (OSError, BrokenPipeError):
                return
            continue
        classifier = snapshot.classifier
        feature_memo: dict[str, frozenset[str]] = {}
        outcomes: list[tuple] = []
        for ref_no, part_id, document, deadline in items:
            if deadline is not None and time.monotonic() > deadline:
                outcomes.append(("expired",))
                continue
            try:
                recommendation = classifier.classify_documents(
                    [(ref_no, part_id, document)], feature_memo)[0]
            except Exception as exc:
                outcomes.append(("error", repr(exc)))
            else:
                outcomes.append(("ok", recommendation))
        try:
            conn.send(("done", task_id, snapshot.version, outcomes))
        except (OSError, BrokenPipeError):
            return
