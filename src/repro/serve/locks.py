"""A writer-preferring reader-writer lock.

The relstore tables are documented as "not thread-safe; QATK drives it
from one pipeline thread".  The serving gateway keeps that contract under
concurrency by wrapping every relstore access: classifications take the
shared (read) side, mutations — assignments, custom codes, bundle
registration, recommendation persistence — take the exclusive (write)
side.  Writers are preferred so a steady stream of reads cannot starve an
expert's assignment.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


class RWLock:
    """Many concurrent readers XOR one writer; writers go first.

    Not reentrant on either side: a thread holding the write lock must not
    re-acquire either side (the gateway never nests acquisitions).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def _wait(self, deadline: float | None) -> bool:
        """Wait on the condition until *deadline* (monotonic); False = late."""
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        return self._cond.wait(remaining) or deadline > time.monotonic()

    # ------------------------------------------------------------------ #
    # read side

    def acquire_read(self, timeout: float | None = None) -> bool:
        """Take the shared side; returns False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._writer_active or self._writers_waiting:
                if not self._wait(deadline):
                    return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        """Release the shared side."""
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # write side

    def acquire_write(self, timeout: float | None = None) -> bool:
        """Take the exclusive side; returns False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    if not self._wait(deadline):
                        return False
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            return True

    def release_write(self) -> None:
        """Release the exclusive side."""
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # context managers

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with lock.read_locked(): ...`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with lock.write_locked(): ...`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:
        return (f"<RWLock readers={self._readers} "
                f"writer={self._writer_active} "
                f"waiting={self._writers_waiting}>")
