"""Typed errors of the serving gateway.

All serving failures are :class:`ServeError` subclasses so transports can
map them to protocol responses in one place (the web app maps
:class:`QueueFullError` and :class:`GatewayStoppedError` to HTTP 503 and
:class:`DeadlineExceededError` to HTTP 504).
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class for serving-gateway failures."""


class QueueFullError(ServeError):
    """Admission control rejected the request: the bounded request queue is
    at capacity.  The caller should back off and retry (HTTP 503)."""


class DeadlineExceededError(ServeError):
    """The request's deadline expired before a worker produced a result.

    Raised both to the waiting caller and recorded on the request so a
    worker that dequeues it later skips the dead work (HTTP 504).
    """


class GatewayStoppedError(ServeError):
    """The gateway is shutting down (or stopped) and no longer accepts or
    completes requests; queued work rejected during drain carries this."""


class WorkerCrashError(ServeError):
    """A worker process died while it held this request's batch.

    The request itself is never lost: the gateway treats the crash like a
    transient classify fault — one in-process retry, then the degraded
    chain — while the pool respawns the worker.
    """


class StaleSnapshotError(ServeError):
    """A worker answered (or would answer) with an outdated model
    snapshot version.  The primary rejects the stale result and re-serves
    the request against the current snapshot instead of returning stale
    suggestions."""


class SnapshotPayloadError(ServeError):
    """A model snapshot could not be exported to / rebuilt from a payload
    (unsupported knowledge-base type, unknown format, or a delta applied
    against the wrong base version)."""


class ReplicaWriteError(ServeError):
    """A write was attempted against a read replica.

    Replicas serve suggestions from replicated snapshots but own no
    authoritative state; the web app refuses their writes with HTTP 405
    and points the caller at the primary."""
