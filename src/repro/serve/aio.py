"""Asyncio event-loop transport for the QUEST web application.

:class:`AsyncQuestServer` is a drop-in alternative to the threaded
:class:`~repro.quest.webapp.QuestServer`: same constructor knobs, same
``start()`` / ``stop(grace)`` / ``address`` surface, same wire contract.
The difference is the cost model.  The threaded transport spends a
thread per connection, so a few hundred idle keep-alive sockets exhaust
it; here every connection is a coroutine parked on a single event loop,
and ten thousand idle sockets cost ten thousand small task objects and
nothing else.

The division of labour:

* **Reads run on the loop.**  GET routes are served inline from the
  immutable :class:`~repro.serve.registry.ModelSnapshot` through
  ``gateway.read_locked()`` / relstore ``read_view()`` — microseconds of
  pure-Python work, no blocking, no thread hop.
* **Classification and writes go to the gateway pool.**  Suggest GETs
  (``/bundle/…``, ``/api/suggest/…``) and every POST block on the
  :class:`~repro.serve.ServeGateway` worker pool, so they are handed off
  via ``loop.run_in_executor``; admission control, deadlines,
  micro-batching and the degraded chain are untouched.

The HTTP/1.1 parser reproduces the threaded transport's body discipline
byte-for-byte: exact ``Content-Length`` on every response, 400/413 (with
``Connection: close``) on malformed or oversized bodies, a bounded
request count per connection, an idle timeout between requests, a header
deadline against slowloris dribble, and drain-aware ``Connection:
close`` once ``stop()`` begins.  The shared route logic lives in
:class:`~repro.quest.webapp.QuestApp`, so the two transports cannot
drift on status codes or bodies — and ``tests/quest/test_keepalive.py``
runs its wire assertions against both to prove it.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import email.utils
import http
import socket
import threading
import time
import urllib.parse

from ..quest import views
from ..quest.webapp import (HEADER_TIMEOUT, KEEPALIVE_IDLE_TIMEOUT,
                            MAX_BODY_BYTES, MAX_REQUESTS_PER_CONNECTION,
                            QuestApp, _is_json_path, _json_error)

if False:  # pragma: no cover - type-only import, avoids gateway cycle
    from .gateway import DrainReport

#: Upper bound on the request line and on any single header line.
MAX_LINE_BYTES = 65536

#: Upper bound on the number of header lines in one request head.
MAX_HEADERS = 100

#: ``Server:`` header value; distinct from the threaded stdlib banner so
#: a capture can tell the transports apart.
SERVER_STRING = "AsyncQuest/1.0"


class _HeaderDeadlineError(TimeoutError):
    """The request head dribbled past the header deadline (slowloris)."""


class _AsyncWire:
    """Buffered reads over a :class:`~asyncio.StreamReader` with the same
    three-phase deadline discipline the threaded transport enforces:

    * **idle** — waiting for the first byte of the next request; a
      timeout here is the ordinary keep-alive idle close (no shed).
    * **head** — the first byte has arrived; the rest of the request
      line and headers must land within ``header_timeout`` *total*, or
      the connection is shed (counted via *on_slow_shed*).
    * **body** — headers parsed; reads revert to the per-chunk idle
      timeout.

    Buffering is explicit (rather than using ``reader.readline``) so
    bytes a client pipelines past one request's head are preserved for
    its body and for the next request.
    """

    def __init__(self, reader: asyncio.StreamReader, idle_timeout: float,
                 header_timeout: float, on_slow_shed) -> None:
        self._reader = reader
        self._idle_timeout = idle_timeout
        self._header_timeout = header_timeout
        self._on_slow_shed = on_slow_shed
        self._buffer = bytearray()
        self._phase = "body"
        self._deadline = 0.0

    def begin_request(self) -> None:
        """Arm the idle phase (or the head deadline, when pipelined bytes
        are already buffered — the 'first byte' of this request has by
        definition arrived)."""
        if self._buffer:
            self._phase = "head"
            self._deadline = time.monotonic() + self._header_timeout
        else:
            self._phase = "idle"

    def end_head(self) -> None:
        """Headers are parsed: drop back to plain idle-timeout reads."""
        self._phase = "body"

    async def _recv(self) -> bytes:
        if self._phase == "head":
            remaining = self._deadline - time.monotonic()
            if remaining <= 0:
                self._on_slow_shed()
                raise _HeaderDeadlineError(
                    "request head incomplete after "
                    f"{self._header_timeout:g}s")
            try:
                return await asyncio.wait_for(
                    self._reader.read(MAX_LINE_BYTES), remaining)
            except TimeoutError:
                self._on_slow_shed()
                raise _HeaderDeadlineError(
                    "request head incomplete after "
                    f"{self._header_timeout:g}s") from None
        chunk = await asyncio.wait_for(
            self._reader.read(MAX_LINE_BYTES), self._idle_timeout)
        if chunk and self._phase == "idle":
            self._phase = "head"
            self._deadline = time.monotonic() + self._header_timeout
        return chunk

    async def readline(self, limit: int = -1) -> bytes:
        while True:
            index = self._buffer.find(b"\n")
            if index >= 0:
                end = index + 1
                if 0 <= limit < end:
                    end = limit
                line = bytes(self._buffer[:end])
                del self._buffer[:end]
                return line
            if 0 <= limit <= len(self._buffer):
                line = bytes(self._buffer[:limit])
                del self._buffer[:limit]
                return line
            chunk = await self._recv()
            if not chunk:
                line = bytes(self._buffer)
                self._buffer.clear()
                return line
            self._buffer += chunk

    async def read(self, size: int) -> bytes:
        while len(self._buffer) < size:
            chunk = await self._recv()
            if not chunk:
                break
            self._buffer += chunk
        data = bytes(self._buffer[:size])
        del self._buffer[:size]
        return data


class _Connection:
    """One keep-alive connection: a parse/dispatch/respond loop that
    mirrors the threaded handler's behaviour decision-for-decision."""

    def __init__(self, server: "AsyncQuestServer",
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.server = server
        self.app = server.app
        self.writer = writer
        self.wire = _AsyncWire(
            reader, server.idle_timeout, server.header_timeout,
            lambda: server.app.gateway.stats.count("slow_client_sheds"))
        self.requests_served = 0
        self.close_connection = False
        #: Path of the request being served (content-type decisions).
        self.path = ""

    # ------------------------------------------------------------------ #
    # response emission (mirrors Handler._send)

    def _draining(self) -> bool:
        return (self.server._draining.is_set()
                or self.app.gateway.stopping)

    def _content_type(self, body: str | bytes = "") -> str:
        if isinstance(body, bytes):
            # Only /api/replicate answers bytes: a pickled payload.
            return "application/octet-stream"
        if _is_json_path(self.path):
            return "application/json"
        return "text/html; charset=utf-8"

    async def send(self, status: int, body: str | bytes,
                   content_type: str = "text/html; charset=utf-8",
                   head_only: bool = False) -> None:
        payload = body if isinstance(body, bytes) else body.encode("utf-8")
        self.requests_served += 1
        if (self.requests_served >= self.server.max_requests_per_connection
                or self._draining()):
            self.close_connection = True
        phrase = http.HTTPStatus(status).phrase
        head = [f"HTTP/1.1 {status} {phrase}\r\n",
                f"Server: {SERVER_STRING}\r\n",
                f"Date: {email.utils.formatdate(usegmt=True)}\r\n",
                f"Content-Type: {content_type}\r\n",
                f"Content-Length: {len(payload)}\r\n"]
        if status in (503, 504):
            head.append("Retry-After: 1\r\n")
        if status == 405:
            head.append("Allow: GET\r\n")
        # Advertise the connection's fate explicitly, exactly like the
        # threaded transport (keep-alive is only promised when the
        # request's protocol allows it).
        if self.close_connection:
            head.append("Connection: close\r\n")
        else:
            head.append("Connection: keep-alive\r\n")
        head.append("\r\n")
        data = "".join(head).encode("latin-1")
        if not head_only:
            data += payload
        self.writer.write(data)
        await self.writer.drain()

    # ------------------------------------------------------------------ #
    # request parsing

    async def _read_head(self):
        """Read and parse one request head.

        Returns ``(method, path, headers)`` on success, ``None`` when the
        connection is done (clean EOF, or a parse error already answered
        with ``Connection: close``).  *headers* is a lowercase-keyed
        dict; duplicate headers keep the last value (only Connection and
        Content-Length are consulted, neither is legitimately repeated).
        """
        self.wire.begin_request()
        raw_line = await self.wire.readline(MAX_LINE_BYTES + 1)
        if not raw_line:
            return None
        if len(raw_line) > MAX_LINE_BYTES:
            await self._refuse(414, "URI too long",
                               "request line exceeds "
                               f"{MAX_LINE_BYTES} bytes")
            return None
        requestline = raw_line.rstrip(b"\r\n").decode("iso-8859-1")
        words = requestline.split()
        if len(words) != 3:
            await self._refuse(400, "Bad request",
                               f"malformed request line {requestline!r}")
            return None
        method, path, version = words
        if version == "HTTP/1.1":
            self.close_connection = False
        elif version == "HTTP/1.0":
            # Pre-keep-alive protocol: close unless the client opts in.
            self.close_connection = True
        else:
            await self._refuse(400, "Bad request",
                               f"unsupported protocol {version!r}")
            return None
        headers: dict[str, str] = {}
        while True:
            line = await self.wire.readline(MAX_LINE_BYTES + 1)
            if len(line) > MAX_LINE_BYTES:
                await self._refuse(400, "Bad request",
                                   "header line exceeds "
                                   f"{MAX_LINE_BYTES} bytes")
                return None
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                # EOF mid-head: nothing sane to answer.
                self.close_connection = True
                return None
            if len(headers) >= MAX_HEADERS:
                await self._refuse(400, "Bad request",
                                   f"more than {MAX_HEADERS} headers")
                return None
            name, sep, value = line.decode("iso-8859-1").partition(":")
            if not sep:
                await self._refuse(400, "Bad request",
                                   f"malformed header line {line!r}")
                return None
            headers[name.strip().lower()] = value.strip()
        self.wire.end_head()
        connection = headers.get("connection", "").lower()
        if connection == "close":
            self.close_connection = True
        elif connection == "keep-alive" and version == "HTTP/1.0":
            self.close_connection = False
        return method, path, headers

    async def _refuse(self, status: int, title: str, message: str) -> None:
        """Answer a protocol-level parse failure and close."""
        self.close_connection = True
        await self.send(status, views.render_message(title, message))

    # ------------------------------------------------------------------ #
    # dispatch

    async def serve_one(self) -> bool:
        """Serve one request; returns False when the connection is done."""
        head = await self._read_head()
        if head is None:
            return False
        method, self.path, headers = head
        if method == "GET":
            await self._do_get(head_only=False)
        elif method == "HEAD":
            await self._do_get(head_only=True)
        elif method == "POST":
            await self._do_post(headers)
        else:
            # The body framing of an unknown method is unknowable, so
            # the connection cannot be trusted for another request.
            self.close_connection = True
            await self.send(
                501, views.render_message(
                    "Unsupported method",
                    f"method {method!r} is not supported"),
                self._content_type())
        return not self.close_connection

    def _blocks_on_workers(self, path: str) -> bool:
        """GET routes that wait on the gateway's classification pool (and
        so must not run inline on the event loop)."""
        bare = urllib.parse.urlsplit(path).path
        return (bare.startswith("/bundle/")
                or bare.startswith("/api/suggest/"))

    async def _do_get(self, head_only: bool) -> None:
        try:
            if self._blocks_on_workers(self.path):
                loop = asyncio.get_running_loop()
                status, body = await loop.run_in_executor(
                    self.server._executor, self.app.get, self.path)
            else:
                # Snapshot reads: read_view()-backed, non-blocking,
                # microseconds — served straight off the loop.
                status, body = self.app.get(self.path)
        except Exception as exc:
            self.close_connection = True
            await self.send(500, views.render_message("Internal error",
                                                      str(exc)),
                            head_only=head_only)
            return
        await self.send(status, body, self._content_type(body),
                        head_only=head_only)

    async def _do_post(self, headers: dict[str, str]) -> None:
        form, problem = await self._read_form(headers)
        as_json = _is_json_path(self.path)
        if problem is not None:
            status, title, message = problem
            body = (_json_error(title, ValueError(message)) if as_json
                    else views.render_message(title, message))
            await self.send(status, body, self._content_type())
            return
        try:
            loop = asyncio.get_running_loop()
            status, body = await loop.run_in_executor(
                self.server._executor, self.app.post,
                urllib.parse.urlsplit(self.path).path, form)
        except Exception as exc:
            self.close_connection = True
            await self.send(500, views.render_message("Internal error",
                                                      str(exc)))
            return
        await self.send(status, body, self._content_type())

    async def _read_form(self, headers: dict[str, str]):
        """The threaded handler's ``_read_form`` body discipline, on the
        event loop: the declared body is always consumed before
        answering, and an unusable declared length closes the
        connection."""
        raw_length = headers.get("content-length")
        try:
            length = int(raw_length) if raw_length is not None else None
        except ValueError:
            length = None
        if length is None or length < 0:
            self.close_connection = True
            return None, (400, "Bad request",
                          "missing or malformed Content-Length")
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            return None, (413, "Payload too large",
                          f"declared body of {length} bytes exceeds "
                          f"the {MAX_BODY_BYTES}-byte limit")
        raw = await self.wire.read(length)
        if len(raw) < length:
            self.close_connection = True
            return None, (400, "Bad request",
                          "request body shorter than its Content-Length")
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError:
            # Fully consumed: the connection stays in sync.
            return None, (400, "Bad request",
                          "request body is not valid UTF-8")
        form = {key: values[0] for key, values
                in urllib.parse.parse_qs(text).items()}
        return form, None


class AsyncQuestServer:
    """Event-loop HTTP/1.1 server with the same surface as the threaded
    :class:`~repro.quest.webapp.QuestServer`.

    The loop runs in one background thread; ``start()`` and ``stop()``
    keep the synchronous call signatures the CLI, the replica runner and
    the test-suite fixtures already use, so transports swap with one
    constructor change.
    """

    def __init__(self, app: QuestApp, host: str = "127.0.0.1",
                 port: int = 0, *,
                 max_requests_per_connection: int =
                 MAX_REQUESTS_PER_CONNECTION,
                 idle_timeout: float = KEEPALIVE_IDLE_TIMEOUT,
                 header_timeout: float = HEADER_TIMEOUT) -> None:
        self.app = app
        self.max_requests_per_connection = max_requests_per_connection
        self.idle_timeout = idle_timeout
        self.header_timeout = header_timeout
        # Bind in the constructor, like the threaded server, so callers
        # can read ``address`` (and print the URL) before ``start()``.
        self._listen_sock: socket.socket | None = socket.create_server(
            (host, port), backlog=1024)
        self._address = self._listen_sock.getsockname()[:2]
        #: Same drain flag semantics as the threaded server: once set,
        #: every response carries ``Connection: close``.
        self._draining = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        #: Threads that park on blocking gateway calls (suggest joins
        #: the micro-batcher, writes take the write lock).  Sized past
        #: the gateway's queue bound so the executor never becomes a
        #: second, silent admission queue in front of the real one.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=32, thread_name_prefix="aio-gateway")

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port)."""
        return self._address

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> None:
        """Bind, then serve on a background event-loop thread (and warm
        the gateway's pool), mirroring ``QuestServer.start()``."""
        self.app.gateway.start()
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(started.set)
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="aio-serve")
        self._thread.start()
        started.wait(timeout=10)
        future = asyncio.run_coroutine_threadsafe(self._bind(), self._loop)
        future.result(timeout=10)

    async def _bind(self) -> None:
        sock, self._listen_sock = self._listen_sock, None
        self._server = await asyncio.start_server(
            self._handle_connection, sock=sock)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Same rationale as the threaded transport: without NODELAY
            # a keep-alive response stalls ~40ms on Nagle + delayed ACK.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        connection = _Connection(self, reader, writer)
        try:
            while await connection.serve_one():
                pass
        except (TimeoutError, asyncio.CancelledError):
            # Idle timeout, header deadline, or shutdown cancel: close
            # silently, exactly like the threaded handler's timeout path.
            pass
        except (ConnectionError, OSError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def stop(self, grace: float | None = None) -> "DrainReport":
        """Drain-aware shutdown mirroring ``QuestServer.stop()``:
        responses switch to ``Connection: close``, the listener stops
        accepting, the gateway drains with the bounded grace, surviving
        idle connections are cancelled, and the loop thread joins.
        Returns the gateway's drain report; idempotent."""
        self._draining.set()
        if self._listen_sock is not None:  # constructed but never started
            self._listen_sock.close()
            self._listen_sock = None
        loop, self._loop = self._loop, None
        if loop is not None:
            asyncio.run_coroutine_threadsafe(
                self._close_listener(), loop).result(timeout=10)
        report = self.app.close(grace)
        if loop is not None:
            asyncio.run_coroutine_threadsafe(
                self._cancel_connections(), loop).result(timeout=10)
            loop.call_soon_threadsafe(loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=10)
                self._thread = None
            loop.close()
        self._executor.shutdown(wait=False, cancel_futures=True)
        return report

    async def _close_listener(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _cancel_connections(self) -> None:
        tasks = [task for task in self._conn_tasks if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def __enter__(self) -> "AsyncQuestServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
