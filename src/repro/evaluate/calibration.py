"""Confidence calibration and override-aware accuracy.

The triage layer (``repro.triage``) attaches a confidence score to every
suggestion.  That score is only useful for routing work to engineers if
it is *calibrated*: higher-confidence deciles should hit the true code
more often than lower ones.  :func:`confidence_calibration` measures
exactly that — accuracy@1 per equal-count confidence bucket — and the
report is what the review-threshold default is tuned against.

:func:`override_aware_accuracy` scores a recommendation set the way the
serving stack answers: a pinned override replaces the classifier's
ranking outright, so an override whose code matches the truth counts as
a rank-1 hit regardless of what the classifier would have said.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..classify.results import Recommendation
from ..triage import override_recommendation, score_confidence
from .metrics import DEFAULT_KS, accuracy_at_k


@dataclass(frozen=True)
class CalibrationBucket:
    """One confidence bucket of the calibration report."""

    index: int                #: 0 = least confident bucket
    size: int                 #: recommendations in the bucket
    min_confidence: float
    max_confidence: float
    mean_confidence: float
    accuracy_at_1: float

    def row(self) -> str:
        """One aligned report line."""
        return (f"bucket {self.index:>2}  n={self.size:>4}  "
                f"confidence {self.min_confidence:.3f}–"
                f"{self.max_confidence:.3f} "
                f"(mean {self.mean_confidence:.3f})  "
                f"acc@1 {self.accuracy_at_1:.3f}")


def confidence_calibration(recommendations: Sequence[Recommendation],
                           truths: Sequence[str],
                           buckets: int = 10) -> list[CalibrationBucket]:
    """Accuracy@1 per equal-count confidence bucket, ascending confidence.

    Ties on confidence are broken by position so every run of equal
    scores lands in a deterministic bucket.  Buckets differ in size by
    at most one; fewer recommendations than *buckets* yields fewer,
    single-item buckets rather than empty ones.

    Raises:
        ValueError: on length mismatch, an empty test set, or a
            non-positive bucket count.
    """
    if len(recommendations) != len(truths):
        raise ValueError("recommendations and truths must align")
    if not truths:
        raise ValueError("empty test set")
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    scored = sorted(
        ((score_confidence(rec).score, position, rec, truth)
         for position, (rec, truth) in enumerate(zip(recommendations,
                                                     truths))),
        key=lambda item: (item[0], item[1]))
    buckets = min(buckets, len(scored))
    report = []
    for index in range(buckets):
        lo = index * len(scored) // buckets
        hi = (index + 1) * len(scored) // buckets
        chunk = scored[lo:hi]
        confidences = [confidence for confidence, _, _, _ in chunk]
        hits = sum(1 for _, _, rec, truth in chunk
                   if rec.rank_of(truth) == 1)
        report.append(CalibrationBucket(
            index=index, size=len(chunk),
            min_confidence=round(min(confidences), 6),
            max_confidence=round(max(confidences), 6),
            mean_confidence=round(sum(confidences) / len(chunk), 6),
            accuracy_at_1=round(hits / len(chunk), 6)))
    return report


def override_aware_accuracy(recommendations: Sequence[Recommendation],
                            truths: Sequence[str],
                            overrides: Mapping[str, str],
                            ks: Iterable[int] = DEFAULT_KS,
                            ) -> dict[int, float]:
    """Accuracy@k with engineer overrides applied, as the gateway serves.

    *overrides* maps ``ref_no`` to the pinned error code (the shape of
    :meth:`repro.triage.OverrideStore.active_map`).  A pinned bundle is
    scored against the pin alone — the override is the served answer.

    Raises:
        ValueError: on length mismatch or an empty test set (via
            :func:`accuracy_at_k`).
    """
    effective = [
        override_recommendation(rec.ref_no, rec.part_id,
                                overrides[rec.ref_no])
        if rec.ref_no in overrides else rec
        for rec in recommendations]
    return accuracy_at_k(effective, truths, ks)
