"""Experiment reporting: turn results into readable breakdowns.

Beyond the headline accuracy@k curves, an industrial adopter wants to know
*where* a variant fails: which part IDs drag the accuracy down, how the
correct code's rank is distributed, and how two variants compare per part.
These reports back the discussion sections of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..classify.results import Recommendation
from ..data.bundle import DataBundle


@dataclass
class RankBreakdown:
    """Rank distribution of the correct code over a test set."""

    ranks: list[int | None] = field(default_factory=list)

    def add(self, rank: int | None) -> None:
        """Record one bundle's rank (None when the code was absent)."""
        self.ranks.append(rank)

    @property
    def total(self) -> int:
        """Number of recorded bundles."""
        return len(self.ranks)

    @property
    def found(self) -> int:
        """How often the correct code appeared anywhere in the list."""
        return sum(1 for rank in self.ranks if rank is not None)

    def histogram(self, buckets: Sequence[int] = (1, 5, 10, 25)) -> dict[str, int]:
        """Counts per rank bucket, plus ``"miss"`` for absent codes."""
        result = {f"<={bucket}": 0 for bucket in buckets}
        result["beyond"] = 0
        result["miss"] = 0
        for rank in self.ranks:
            if rank is None:
                result["miss"] += 1
                continue
            for bucket in buckets:
                if rank <= bucket:
                    result[f"<={bucket}"] += 1
                    break
            else:
                result["beyond"] += 1
        return result

    def mean_rank(self) -> float | None:
        """Mean rank of the correct code among found cases, or None."""
        found = [rank for rank in self.ranks if rank is not None]
        if not found:
            return None
        return sum(found) / len(found)


@dataclass
class PartBreakdown:
    """Per-part-ID accuracy summary."""

    part_id: str
    total: int = 0
    hits_at_1: int = 0
    hits_at_10: int = 0

    @property
    def accuracy_at_1(self) -> float:
        """Share of this part's bundles hit at rank 1."""
        return self.hits_at_1 / self.total if self.total else 0.0

    @property
    def accuracy_at_10(self) -> float:
        """Share of this part's bundles hit within rank 10."""
        return self.hits_at_10 / self.total if self.total else 0.0


def breakdown_by_part(bundles: Sequence[DataBundle],
                      recommendations: Sequence[Recommendation],
                      ) -> list[PartBreakdown]:
    """Per-part accuracies of paired bundles/recommendations.

    Raises:
        ValueError: on length mismatch.
    """
    if len(bundles) != len(recommendations):
        raise ValueError("bundles and recommendations must align")
    parts: dict[str, PartBreakdown] = {}
    for bundle, recommendation in zip(bundles, recommendations):
        entry = parts.setdefault(bundle.part_id,
                                 PartBreakdown(part_id=bundle.part_id))
        entry.total += 1
        rank = recommendation.rank_of(bundle.error_code)
        if rank is not None and rank <= 1:
            entry.hits_at_1 += 1
        if rank is not None and rank <= 10:
            entry.hits_at_10 += 1
    return sorted(parts.values(), key=lambda entry: entry.part_id)


def rank_breakdown(bundles: Sequence[DataBundle],
                   recommendations: Sequence[Recommendation],
                   ) -> RankBreakdown:
    """Rank distribution of the correct code.

    Raises:
        ValueError: on length mismatch.
    """
    if len(bundles) != len(recommendations):
        raise ValueError("bundles and recommendations must align")
    breakdown = RankBreakdown()
    for bundle, recommendation in zip(bundles, recommendations):
        breakdown.add(recommendation.rank_of(bundle.error_code))
    return breakdown


def render_markdown_report(title: str,
                           bundles: Sequence[DataBundle],
                           recommendations: Sequence[Recommendation]) -> str:
    """A self-contained markdown report for one evaluated variant."""
    ranks = rank_breakdown(bundles, recommendations)
    parts = breakdown_by_part(bundles, recommendations)
    histogram = ranks.histogram()
    lines = [f"# {title}", "",
             f"test bundles: {ranks.total}; correct code present in list: "
             f"{ranks.found} ({ranks.found / max(ranks.total, 1):.1%})",
             ""]
    mean_rank = ranks.mean_rank()
    if mean_rank is not None:
        lines.append(f"mean rank of the correct code: {mean_rank:.2f}")
        lines.append("")
    lines.append("## Rank distribution")
    lines.append("")
    lines.append("| bucket | bundles |")
    lines.append("|---|---|")
    for bucket, count in histogram.items():
        lines.append(f"| {bucket} | {count} |")
    lines.append("")
    lines.append("## Per part ID")
    lines.append("")
    lines.append("| part | bundles | acc@1 | acc@10 |")
    lines.append("|---|---|---|---|")
    for entry in parts:
        lines.append(f"| {entry.part_id} | {entry.total} "
                     f"| {entry.accuracy_at_1:.3f} "
                     f"| {entry.accuracy_at_10:.3f} |")
    return "\n".join(lines) + "\n"
