"""Evaluation metrics.

The paper's measure is accuracy@k (§5.1): the share of test bundles whose
correct error code appears within the first k ranked suggestions, for
k in {1, 5, 10, 15, 20, 25}.  Mean reciprocal rank is provided as an
additional diagnostic.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..classify.results import Recommendation

#: The k values reported in the paper's figures.
DEFAULT_KS: tuple[int, ...] = (1, 5, 10, 15, 20, 25)


def accuracy_at_k(recommendations: Sequence[Recommendation],
                  truths: Sequence[str],
                  ks: Iterable[int] = DEFAULT_KS) -> dict[int, float]:
    """Accuracy@k over paired recommendations and true codes.

    Raises:
        ValueError: on length mismatch or an empty test set.
    """
    if len(recommendations) != len(truths):
        raise ValueError("recommendations and truths must align")
    if not truths:
        raise ValueError("empty test set")
    ranks = []
    for recommendation, truth in zip(recommendations, truths):
        ranks.append(recommendation.rank_of(truth))
    return {k: sum(1 for rank in ranks if rank is not None and rank <= k)
            / len(ranks)
            for k in ks}


def mean_reciprocal_rank(recommendations: Sequence[Recommendation],
                         truths: Sequence[str]) -> float:
    """Mean reciprocal rank of the correct code (0 contribution if absent).

    Raises:
        ValueError: on length mismatch or an empty test set.
    """
    if len(recommendations) != len(truths):
        raise ValueError("recommendations and truths must align")
    if not truths:
        raise ValueError("empty test set")
    total = 0.0
    for recommendation, truth in zip(recommendations, truths):
        rank = recommendation.rank_of(truth)
        if rank is not None:
            total += 1.0 / rank
    return total / len(truths)


def merge_fold_accuracies(per_fold: Sequence[dict[int, float]],
                          weights: Sequence[int] | None = None,
                          ) -> dict[int, float]:
    """Average accuracy@k dicts over folds (optionally size-weighted).

    Raises:
        ValueError: on an empty fold list or when the folds disagree about
            which k values were measured (naming the offending k).
    """
    if not per_fold:
        raise ValueError("no folds to merge")
    ks = per_fold[0].keys()
    for index, fold in enumerate(per_fold[1:], start=1):
        missing = sorted(ks - fold.keys())
        if missing:
            raise ValueError(f"fold {index} is missing accuracy@{missing[0]} "
                             f"(folds must share one k set)")
        extra = sorted(fold.keys() - ks)
        if extra:
            raise ValueError(f"fold {index} has unexpected accuracy@{extra[0]} "
                             f"(folds must share one k set)")
    if weights is None:
        weights = [1] * len(per_fold)
    total = sum(weights)
    return {k: sum(fold[k] * weight for fold, weight in zip(per_fold, weights))
            / total
            for k in ks}
