"""Parallel cross-validation with shared feature extraction.

:func:`run_experiment` evaluates folds strictly sequentially and
re-extracts every document's features for every variant.  This module adds
the production runner the ROADMAP asks for:

* :func:`run_experiment_parallel` — one variant, folds evaluated
  concurrently in worker processes (``ProcessPoolExecutor``), with an
  in-process fallback when ``max_workers=1`` or no pool can be created
  (restricted sandboxes, missing ``fork`` support, unpicklable inputs).
* :func:`run_experiments_parallel` — several variants at once; variants
  sharing a feature mode also share one knowledge base and one memoized
  feature extraction per fold, so the words+jaccard / words+overlap pair
  of Experiment 1 extracts each document once instead of twice.

Determinism: folds are materialized once in the parent with the config's
seed and shipped to the workers; accuracy@k depends only on the
(deterministic) classification of each fold, never on scheduling, so the
returned accuracies are bit-identical to the serial runner's.  Only the
wall-clock fields differ run to run, exactly as they do serially.
"""

from __future__ import annotations

import logging
import time
from typing import Sequence

from ..classify.knn import RankedKnnClassifier
from ..data.bundle import DataBundle
from ..knowledge.base import KnowledgeBase
from ..knowledge.extractor import FeatureExtractor
from ..taxonomy.annotator import ConceptAnnotator
from ..taxonomy.model import Taxonomy
from .crossval import stratified_folds
from .experiment import (ExperimentConfig, ExperimentResult, FoldOutcome,
                         build_extractor)
from .metrics import accuracy_at_k

logger = logging.getLogger(__name__)

#: Exception types a retry cannot fix: they signal a deterministic bug in
#: the fold inputs or config, not a transient fault, so re-running the
#: fold would only repeat the failure (and double its cost).
_NON_TRANSIENT = (ValueError, TypeError)


class MemoizedExtractor:
    """Wraps an extractor with a text -> feature-set memo.

    Extraction is deterministic, so a memo hit is bit-identical to
    recomputation.  Keyed by the document text itself: correct even when
    two bundles share a ref_no.  One instance is shared by all variants of
    one feature mode within one fold, which is also the lifetime bound of
    the memo.
    """

    def __init__(self, inner: FeatureExtractor) -> None:
        self.inner = inner
        self.name = inner.name
        self._memo: dict[str, frozenset[str]] = {}

    def extract_text(self, text: str) -> frozenset[str]:
        features = self._memo.get(text)
        if features is None:
            features = self.inner.extract_text(text)
            self._memo[text] = features
        return features

    def __repr__(self) -> str:
        return f"<MemoizedExtractor {self.name} memo={len(self._memo)}>"


def _evaluate_fold(task: tuple) -> list[FoldOutcome]:
    """Evaluate all *configs* on one fold (worker entry point).

    Variants are grouped by feature mode: one knowledge base and one
    memoized extractor serve every similarity measure of that mode.
    """
    fold_index, train, test, configs, taxonomy, annotator = task
    extractors: dict[str, MemoizedExtractor] = {}
    bases: dict[str, KnowledgeBase] = {}
    outcomes: list[FoldOutcome] = []
    truths = [bundle.error_code for bundle in test]
    for config in configs:
        mode = config.feature_mode
        extractor = extractors.get(mode)
        if extractor is None:
            extractor = MemoizedExtractor(
                build_extractor(mode, taxonomy, annotator))
            extractors[mode] = extractor
            bases[mode] = KnowledgeBase.from_bundles(train, extractor)
        classifier = RankedKnnClassifier(bases[mode], extractor,
                                         config.similarity,
                                         config.node_cutoff)
        start = time.perf_counter()
        recommendations = [classifier.classify_bundle(bundle,
                                                      config.test_sources)
                           for bundle in test]
        elapsed = time.perf_counter() - start
        outcomes.append(FoldOutcome(
            fold=fold_index,
            test_count=len(test),
            accuracies=accuracy_at_k(recommendations, truths, config.ks),
            knowledge_nodes=len(bases[mode]),
            seconds=elapsed,
        ))
    return outcomes


def _evaluate_fold_with_retry(task: tuple) -> list[FoldOutcome]:
    """Evaluate one fold, retrying once before failing the run.

    Fold evaluation is deterministic, so a retry only helps against
    *transient* faults (a flaky annotator dependency, an OOM-killed
    worker, injected test faults) — exactly the cases where failing a
    multi-minute cross-validation run outright is wasteful.  Exception
    types that cannot be transient (``ValueError``/``TypeError``: bad
    inputs or config) propagate immediately, and a second failure of any
    kind propagates too: it is then a real bug, not noise.
    """
    try:
        return _evaluate_fold(task)
    except _NON_TRANSIENT:
        raise
    except Exception as exc:
        logger.warning("fold %s failed (%r); retrying once", task[0], exc)
        return _evaluate_fold(task)


def _run_pool(tasks: list[tuple], max_workers: int) -> list[list[FoldOutcome]]:
    """Run fold tasks on a process pool; raises when no pool is possible."""
    from concurrent.futures import ProcessPoolExecutor
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_evaluate_fold_with_retry, tasks))


def run_experiments_parallel(bundles: Sequence[DataBundle],
                             configs: Sequence[ExperimentConfig],
                             taxonomy: Taxonomy | None = None,
                             annotator: ConceptAnnotator | None = None,
                             *,
                             max_workers: int | None = None,
                             ) -> list[ExperimentResult]:
    """Cross-validate several variants, folds in parallel.

    Args:
        bundles: the labeled corpus.
        configs: the variants; all must share ``folds`` and ``seed`` so a
            single fold split serves every variant.
        taxonomy / annotator: concept-mode dependencies, as in
            :func:`repro.evaluate.experiment.run_experiment`.
        max_workers: worker processes; ``None`` uses one per fold
            (bounded by the fold count), ``1`` forces in-process
            evaluation.  Any failure to create or use a pool falls back to
            in-process evaluation — results are identical either way.

    Returns one :class:`ExperimentResult` per config, in config order,
    with accuracies bit-identical to :func:`run_experiment`.

    Raises:
        ValueError: on an empty config list or mismatched folds/seed.
    """
    configs = list(configs)
    if not configs:
        raise ValueError("no experiment configs to run")
    first = configs[0]
    for config in configs[1:]:
        if (config.folds, config.seed) != (first.folds, first.seed):
            raise ValueError(
                "all configs must share folds and seed for a joint run "
                f"(got folds={config.folds}/seed={config.seed}, expected "
                f"folds={first.folds}/seed={first.seed})")
    folds = list(stratified_folds(bundles, first.folds, first.seed))
    if max_workers is None:
        import os
        max_workers = min(len(folds), os.cpu_count() or 1)
    tasks = [(fold.index, fold.train, fold.test, configs, taxonomy, annotator)
             for fold in folds]
    per_fold: list[list[FoldOutcome]] | None = None
    if max_workers > 1:
        from concurrent.futures.process import BrokenProcessPool
        try:
            per_fold = _run_pool(tasks, min(max_workers, len(folds)))
        except BrokenProcessPool as exc:
            # A worker died hard (OOM-kill, segfault) and took the pool
            # with it — distinct from "no pool possible": every fold is
            # re-evaluated in-process, which also sidesteps whatever
            # resource pressure killed the worker.
            logger.warning("fold worker process died (%s); re-running all "
                           "folds in-process", exc)
            per_fold = None
        except Exception as exc:
            # no usable pool (sandbox, pickling, interpreter shutdown...):
            # the serial path below computes the identical result.
            logger.info("process pool unavailable (%r); evaluating folds "
                        "in-process", exc)
            per_fold = None
    if per_fold is None:
        per_fold = [_evaluate_fold_with_retry(task) for task in tasks]
    results = [ExperimentResult(name=config.label) for config in configs]
    for fold_outcomes in per_fold:
        for result, outcome in zip(results, fold_outcomes):
            result.folds.append(outcome)
    return results


def run_experiment_parallel(bundles: Sequence[DataBundle],
                            config: ExperimentConfig,
                            taxonomy: Taxonomy | None = None,
                            annotator: ConceptAnnotator | None = None,
                            *,
                            max_workers: int | None = None,
                            ) -> ExperimentResult:
    """Parallel drop-in for :func:`run_experiment` (one variant).

    Accuracies are bit-identical to the serial runner; only wall-clock
    fields differ (as they do between any two timed runs).
    """
    return run_experiments_parallel(bundles, [config], taxonomy, annotator,
                                    max_workers=max_workers)[0]
