"""Learning-curve evaluation.

§4.2 motivates kNN precisely because it "is instance-based and therefore
allows for predictions about class membership even with a small data set
and a large number of classes".  A learning curve — accuracy as a function
of the number of classified training bundles — is the direct probe of that
claim, and tells an adopting quality department how much labelled history
they need before QUEST becomes useful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..classify.knn import RankedKnnClassifier
from ..data.bundle import DataBundle
from ..knowledge.base import KnowledgeBase
from ..taxonomy.annotator import ConceptAnnotator
from ..taxonomy.model import Taxonomy
from .crossval import stratified_folds
from .experiment import ExperimentConfig, build_extractor
from .metrics import accuracy_at_k

#: Default training-set sizes for the sweep.
DEFAULT_SIZES: tuple[int, ...] = (250, 500, 1000, 2000, 4000)


@dataclass(frozen=True)
class LearningPoint:
    """One point of a learning curve."""

    train_size: int
    knowledge_nodes: int
    accuracies: dict[int, float]
    seconds_per_bundle: float


def run_learning_curve(bundles: Sequence[DataBundle],
                       config: ExperimentConfig,
                       sizes: Sequence[int] = DEFAULT_SIZES,
                       taxonomy: Taxonomy | None = None,
                       annotator: ConceptAnnotator | None = None,
                       ) -> list[LearningPoint]:
    """Accuracy@k as a function of training-set size.

    The test set is the last stratified fold (fixed across sizes, so the
    points are comparable); training subsets are nested prefixes of the
    remaining data, so each larger point strictly contains the smaller.

    Raises:
        ValueError: if a requested size exceeds the available training data.
    """
    extractor = build_extractor(config.feature_mode, taxonomy, annotator)
    folds = list(stratified_folds(bundles, config.folds, config.seed))
    fold = folds[-1]
    train_pool = list(fold.train)
    test = list(fold.test)
    truths = [bundle.error_code for bundle in test]
    points: list[LearningPoint] = []
    for size in sizes:
        if size > len(train_pool):
            raise ValueError(f"size {size} exceeds the training pool "
                             f"({len(train_pool)})")
        knowledge_base = KnowledgeBase.from_bundles(train_pool[:size],
                                                    extractor)
        classifier = RankedKnnClassifier(knowledge_base, extractor,
                                         config.similarity,
                                         config.node_cutoff)
        start = time.perf_counter()
        recommendations = [classifier.classify_bundle(bundle,
                                                      config.test_sources)
                           for bundle in test]
        elapsed = time.perf_counter() - start
        points.append(LearningPoint(
            train_size=size,
            knowledge_nodes=len(knowledge_base),
            accuracies=accuracy_at_k(recommendations, truths, config.ks),
            seconds_per_bundle=elapsed / len(test)))
    return points


def curve_row(point: LearningPoint) -> str:
    """A printable row for one learning-curve point."""
    cells = "  ".join(f"@{k}={value:.3f}"
                      for k, value in sorted(point.accuracies.items()))
    return (f"train={point.train_size:<6} nodes={point.knowledge_nodes:<6} "
            f"{cells}  {point.seconds_per_bundle * 1000:.2f} ms/bundle")
