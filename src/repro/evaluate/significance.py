"""Paired bootstrap significance testing for accuracy@k comparisons.

Fig. 11-13 compare classifier variants on the *same* test bundles, so the
right test is a paired one: resample the test set with replacement and
count how often the accuracy difference flips sign.  This is standard
practice in NLP evaluation and exactly what a reviewer would ask of the
paper's "the bag-of-words model is currently providing better accuracies"
claim.

Pure-Python, seeded, no dependencies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..classify.results import Recommendation


@dataclass(frozen=True)
class PairedBootstrapResult:
    """Outcome of one paired bootstrap comparison."""

    accuracy_a: float
    accuracy_b: float
    delta: float
    p_value: float
    samples: int

    @property
    def significant(self) -> bool:
        """Whether the difference is significant at the 5 % level."""
        return self.p_value < 0.05

    def __str__(self) -> str:
        marker = "significant" if self.significant else "not significant"
        return (f"acc_a={self.accuracy_a:.3f} acc_b={self.accuracy_b:.3f} "
                f"delta={self.delta:+.3f} p={self.p_value:.4f} ({marker})")


def _hits(recommendations: Sequence[Recommendation], truths: Sequence[str],
          k: int) -> list[bool]:
    return [recommendation.hit_at(truth, k)
            for recommendation, truth in zip(recommendations, truths)]


def paired_bootstrap(recommendations_a: Sequence[Recommendation],
                     recommendations_b: Sequence[Recommendation],
                     truths: Sequence[str], k: int = 1,
                     samples: int = 2000, seed: int = 17,
                     ) -> PairedBootstrapResult:
    """Test whether variant A beats variant B at accuracy@k.

    The reported p-value is the one-sided probability (under resampling)
    that the observed advantage of the better variant disappears.

    Raises:
        ValueError: on length mismatches or an empty test set.
    """
    if not (len(recommendations_a) == len(recommendations_b) == len(truths)):
        raise ValueError("both variants and truths must align")
    if not truths:
        raise ValueError("empty test set")
    hits_a = _hits(recommendations_a, truths, k)
    hits_b = _hits(recommendations_b, truths, k)
    n = len(truths)
    accuracy_a = sum(hits_a) / n
    accuracy_b = sum(hits_b) / n
    observed = accuracy_a - accuracy_b
    if observed == 0.0:
        return PairedBootstrapResult(accuracy_a, accuracy_b, 0.0, 1.0, samples)
    rng = random.Random(seed)
    sign = 1.0 if observed > 0 else -1.0
    flips = 0
    for _ in range(samples):
        delta = 0
        for _ in range(n):
            index = rng.randrange(n)
            delta += hits_a[index] - hits_b[index]
        if sign * delta <= 0:
            flips += 1
    return PairedBootstrapResult(accuracy_a, accuracy_b, observed,
                                 flips / samples, samples)


def compare_variants(recommendations_by_name: dict[str, Sequence[Recommendation]],
                     truths: Sequence[str], k: int = 1,
                     samples: int = 1000, seed: int = 17,
                     ) -> dict[tuple[str, str], PairedBootstrapResult]:
    """All pairwise paired-bootstrap comparisons among named variants."""
    names = sorted(recommendations_by_name)
    results: dict[tuple[str, str], PairedBootstrapResult] = {}
    for i, name_a in enumerate(names):
        for name_b in names[i + 1:]:
            results[(name_a, name_b)] = paired_bootstrap(
                recommendations_by_name[name_a],
                recommendations_by_name[name_b],
                truths, k=k, samples=samples, seed=seed)
    return results
