"""The experiment runner behind §5.2-5.4.

One :class:`ExperimentConfig` describes a classifier variant (feature
model x similarity measure x test report sources); :func:`run_experiment`
evaluates it with stratified cross-validation and returns per-fold and
averaged accuracy@k plus per-bundle classification time — everything the
paper's figures plot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..classify.baselines import CandidateSetBaseline, CodeFrequencyBaseline
from ..classify.knn import DEFAULT_NODE_CUTOFF, RankedKnnClassifier
from ..data.bundle import DataBundle, ReportSource, TEST_TIME_SOURCES
from ..data.nhtsa import Complaint
from ..knowledge.base import KnowledgeBase
from ..knowledge.extractor import (BagOfConceptsExtractor,
                                   BagOfWordsExtractor, FeatureExtractor,
                                   complaint_document)
from ..taxonomy.annotator import ConceptAnnotator
from ..taxonomy.model import Taxonomy
from .crossval import stratified_folds
from .metrics import DEFAULT_KS, accuracy_at_k, merge_fold_accuracies

#: Feature-mode identifiers accepted by :class:`ExperimentConfig`.
FEATURE_MODES = ("words", "words-nostop", "words-stem", "concepts")


@dataclass(frozen=True)
class ExperimentConfig:
    """One classifier variant under evaluation."""

    feature_mode: str = "words"
    similarity: str = "jaccard"
    folds: int = 5
    ks: tuple[int, ...] = DEFAULT_KS
    test_sources: tuple[ReportSource, ...] = TEST_TIME_SOURCES
    node_cutoff: int = DEFAULT_NODE_CUTOFF
    seed: int = 7

    def __post_init__(self) -> None:
        if self.feature_mode not in FEATURE_MODES:
            raise ValueError(f"unknown feature mode {self.feature_mode!r}; "
                             f"expected one of {FEATURE_MODES}")

    @property
    def label(self) -> str:
        """Short display label, e.g. ``"concepts+jaccard"``."""
        return f"{self.feature_mode}+{self.similarity}"


@dataclass(frozen=True)
class FoldOutcome:
    """Metrics of a single fold."""

    fold: int
    test_count: int
    accuracies: dict[int, float]
    knowledge_nodes: int
    seconds: float

    @property
    def seconds_per_bundle(self) -> float:
        """Classification wall-clock per test bundle."""
        return self.seconds / self.test_count if self.test_count else 0.0


@dataclass
class ExperimentResult:
    """Cross-validated metrics of one variant."""

    name: str
    folds: list[FoldOutcome] = field(default_factory=list)

    @property
    def accuracies(self) -> dict[int, float]:
        """Test-size-weighted mean accuracy@k over the folds."""
        return merge_fold_accuracies([fold.accuracies for fold in self.folds],
                                     [fold.test_count for fold in self.folds])

    @property
    def seconds_per_bundle(self) -> float:
        """Mean classification time per bundle over all folds."""
        total_seconds = sum(fold.seconds for fold in self.folds)
        total_bundles = sum(fold.test_count for fold in self.folds)
        return total_seconds / total_bundles if total_bundles else 0.0

    def accuracy_std(self, k: int) -> float:
        """Population standard deviation of accuracy@k across folds.

        A quick stability check before reading small differences between
        variants as real (use :func:`repro.evaluate.paired_bootstrap` for a
        proper test).

        Raises:
            ValueError: when *k* was not measured in every fold.
        """
        for fold in self.folds:
            if k not in fold.accuracies:
                raise ValueError(
                    f"accuracy@{k} was not measured for fold {fold.fold} "
                    f"of {self.name!r} (known k values: "
                    f"{sorted(fold.accuracies)})")
        values = [fold.accuracies[k] for fold in self.folds]
        if len(values) < 2:
            return 0.0
        mean = sum(values) / len(values)
        return (sum((value - mean) ** 2 for value in values)
                / len(values)) ** 0.5

    def accuracy_row(self) -> str:
        """A printable accuracy@k row (used by the benchmark harness)."""
        cells = "  ".join(f"@{k}={value:.3f}"
                          for k, value in sorted(self.accuracies.items()))
        return f"{self.name:<28} {cells}"


def build_extractor(feature_mode: str, taxonomy: Taxonomy | None = None,
                    annotator: ConceptAnnotator | None = None,
                    ) -> FeatureExtractor:
    """Instantiate the extractor for a feature mode.

    Raises:
        ValueError: for unknown modes or a missing taxonomy.
    """
    if feature_mode == "words":
        return BagOfWordsExtractor()
    if feature_mode == "words-nostop":
        return BagOfWordsExtractor(remove_stopwords=True)
    if feature_mode == "words-stem":
        return BagOfWordsExtractor(remove_stopwords=True, stem=True)
    if feature_mode == "concepts":
        if annotator is None and taxonomy is None:
            raise ValueError("concept features need a taxonomy")
        return BagOfConceptsExtractor(taxonomy=taxonomy, annotator=annotator)
    raise ValueError(f"unknown feature mode {feature_mode!r}")


def run_experiment(bundles: Sequence[DataBundle],
                   config: ExperimentConfig,
                   taxonomy: Taxonomy | None = None,
                   annotator: ConceptAnnotator | None = None,
                   ) -> ExperimentResult:
    """Cross-validate one classifier variant over *bundles*."""
    extractor = build_extractor(config.feature_mode, taxonomy, annotator)
    result = ExperimentResult(name=config.label)
    for fold in stratified_folds(bundles, config.folds, config.seed):
        knowledge_base = KnowledgeBase.from_bundles(fold.train, extractor)
        classifier = RankedKnnClassifier(knowledge_base, extractor,
                                         config.similarity,
                                         config.node_cutoff)
        start = time.perf_counter()
        recommendations = [classifier.classify_bundle(bundle,
                                                      config.test_sources)
                           for bundle in fold.test]
        elapsed = time.perf_counter() - start
        truths = [bundle.error_code for bundle in fold.test]
        result.folds.append(FoldOutcome(
            fold=fold.index,
            test_count=len(fold.test),
            accuracies=accuracy_at_k(recommendations, truths, config.ks),
            knowledge_nodes=len(knowledge_base),
            seconds=elapsed,
        ))
    return result


def run_frequency_baseline(bundles: Sequence[DataBundle],
                           config: ExperimentConfig) -> ExperimentResult:
    """Cross-validate the code-frequency baseline (§5.1 baseline 1)."""
    result = ExperimentResult(name="code-frequency baseline")
    for fold in stratified_folds(bundles, config.folds, config.seed):
        baseline = CodeFrequencyBaseline.from_bundles(fold.train)
        start = time.perf_counter()
        recommendations = [baseline.classify_bundle(bundle)
                           for bundle in fold.test]
        elapsed = time.perf_counter() - start
        truths = [bundle.error_code for bundle in fold.test]
        result.folds.append(FoldOutcome(
            fold=fold.index, test_count=len(fold.test),
            accuracies=accuracy_at_k(recommendations, truths, config.ks),
            knowledge_nodes=0, seconds=elapsed))
    return result


def run_candidate_set_baseline(bundles: Sequence[DataBundle],
                               config: ExperimentConfig,
                               taxonomy: Taxonomy | None = None,
                               annotator: ConceptAnnotator | None = None,
                               ) -> ExperimentResult:
    """Cross-validate the unsorted candidate-set baseline (§5.1 baseline 2).

    Depends on the feature model, so the config's ``feature_mode`` selects
    the bag-of-words or bag-of-concepts flavour shown in Fig. 11.
    """
    extractor = build_extractor(config.feature_mode, taxonomy, annotator)
    result = ExperimentResult(
        name=f"candidate-set baseline ({config.feature_mode})")
    for fold in stratified_folds(bundles, config.folds, config.seed):
        knowledge_base = KnowledgeBase.from_bundles(fold.train, extractor)
        baseline = CandidateSetBaseline(knowledge_base, extractor)
        start = time.perf_counter()
        recommendations = [baseline.classify_bundle(bundle,
                                                    config.test_sources)
                           for bundle in fold.test]
        elapsed = time.perf_counter() - start
        truths = [bundle.error_code for bundle in fold.test]
        result.folds.append(FoldOutcome(
            fold=fold.index, test_count=len(fold.test),
            accuracies=accuracy_at_k(recommendations, truths, config.ks),
            knowledge_nodes=len(knowledge_base), seconds=elapsed))
    return result


def run_report_source_experiment(bundles: Sequence[DataBundle],
                                 config: ExperimentConfig,
                                 source: ReportSource,
                                 taxonomy: Taxonomy | None = None,
                                 annotator: ConceptAnnotator | None = None,
                                 ) -> ExperimentResult:
    """Experiment 2 (§5.3): train on all reports, test on one source only."""
    restricted = replace(config, test_sources=(source,))
    result = run_experiment(bundles, restricted, taxonomy, annotator)
    result.name = f"{config.label} [{source.value} only]"
    return result


def run_cross_source_evaluation(train_bundles: Sequence[DataBundle],
                                complaints: Sequence[Complaint],
                                part_id_of_code: dict[str, str],
                                config: ExperimentConfig,
                                taxonomy: Taxonomy | None = None,
                                annotator: ConceptAnnotator | None = None,
                                ) -> dict[int, float]:
    """Ablation A3: train on OEM bundles, classify NHTSA-style complaints.

    The planted ground-truth codes of the synthetic complaints make the
    cross-source degradation measurable (the paper only argues it
    qualitatively in §5.4).
    """
    extractor = build_extractor(config.feature_mode, taxonomy, annotator)
    knowledge_base = KnowledgeBase.from_bundles(train_bundles, extractor)
    classifier = RankedKnnClassifier(knowledge_base, extractor,
                                     config.similarity, config.node_cutoff)
    recommendations = []
    truths = []
    for complaint in complaints:
        part_id = part_id_of_code[complaint.planted_code]
        recommendations.append(classifier.classify_text(
            part_id, complaint_document(complaint), ref_no=complaint.cmplid))
        truths.append(complaint.planted_code)
    return accuracy_at_k(recommendations, truths, config.ks)
