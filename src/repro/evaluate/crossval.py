"""Stratified k-fold cross-validation (§5.1).

"We run all experiments with stratified 5-fold cross-validation on the
6782 data bundles whose error code appears more than once": for each error
code, its bundles are spread over the folds so that each fold's training
side sees ~4/5 of every code's instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..data.bundle import DataBundle


@dataclass(frozen=True)
class Fold:
    """One train/test split."""

    index: int
    train: tuple[DataBundle, ...]
    test: tuple[DataBundle, ...]


def experiment_subset(bundles: Iterable[DataBundle]) -> list[DataBundle]:
    """The bundles whose error code appears more than once (§3.2).

    Codes observed a single time are removed "since nothing can be learned
    from them for the classification task at hand".
    """
    bundles = list(bundles)
    counts: dict[str, int] = {}
    for bundle in bundles:
        if bundle.error_code is not None:
            counts[bundle.error_code] = counts.get(bundle.error_code, 0) + 1
    return [bundle for bundle in bundles
            if bundle.error_code is not None and counts[bundle.error_code] > 1]


def stratified_folds(bundles: Sequence[DataBundle], folds: int = 5,
                     seed: int = 7) -> Iterator[Fold]:
    """Yield stratified train/test folds.

    Every bundle appears in exactly one test fold.  Stratification is by
    error code: each code's bundles are shuffled and dealt round-robin to
    the folds, with a per-code random starting fold so codes with fewer
    instances than folds do not all land in fold 0.

    Raises:
        ValueError: if *folds* < 2.
    """
    if folds < 2:
        raise ValueError("need at least 2 folds")
    rng = random.Random(seed)
    by_code: dict[str, list[DataBundle]] = {}
    for bundle in bundles:
        if bundle.error_code is None:
            raise ValueError(f"bundle {bundle.ref_no} has no error code")
        by_code.setdefault(bundle.error_code, []).append(bundle)
    assignments: list[list[DataBundle]] = [[] for _ in range(folds)]
    for code in sorted(by_code):
        items = by_code[code]
        rng.shuffle(items)
        start = rng.randrange(folds)
        for position, bundle in enumerate(items):
            assignments[(start + position) % folds].append(bundle)
    for index in range(folds):
        test = tuple(assignments[index])
        train = [bundle for other in range(folds) if other != index
                 for bundle in assignments[other]]
        # Training order is the knowledge base's storage order; shuffle it
        # so "storage order" carries no class information (it is the basis
        # of the unsorted candidate-set baseline).
        random.Random(seed * 31 + index).shuffle(train)
        yield Fold(index=index, train=tuple(train), test=test)
