"""Evaluation harness: stratified CV, accuracy@k, experiment runner (§5)."""

from .calibration import (CalibrationBucket, confidence_calibration,
                          override_aware_accuracy)
from .crossval import Fold, experiment_subset, stratified_folds
from .experiment import (FEATURE_MODES, ExperimentConfig, ExperimentResult,
                         FoldOutcome, build_extractor,
                         run_candidate_set_baseline, run_cross_source_evaluation,
                         run_experiment, run_frequency_baseline,
                         run_report_source_experiment)
from .learning import (DEFAULT_SIZES, LearningPoint, curve_row,
                       run_learning_curve)
from .metrics import (DEFAULT_KS, accuracy_at_k, mean_reciprocal_rank,
                      merge_fold_accuracies)
from .parallel import (MemoizedExtractor, run_experiment_parallel,
                       run_experiments_parallel)
from .significance import (PairedBootstrapResult, compare_variants,
                           paired_bootstrap)
from .report import (PartBreakdown, RankBreakdown, breakdown_by_part,
                     rank_breakdown, render_markdown_report)

__all__ = [
    "DEFAULT_KS",
    "DEFAULT_SIZES",
    "CalibrationBucket",
    "ExperimentConfig",
    "ExperimentResult",
    "FEATURE_MODES",
    "Fold",
    "FoldOutcome",
    "LearningPoint",
    "MemoizedExtractor",
    "PairedBootstrapResult",
    "PartBreakdown",
    "RankBreakdown",
    "accuracy_at_k",
    "breakdown_by_part",
    "compare_variants",
    "confidence_calibration",
    "curve_row",
    "build_extractor",
    "experiment_subset",
    "mean_reciprocal_rank",
    "merge_fold_accuracies",
    "override_aware_accuracy",
    "paired_bootstrap",
    "rank_breakdown",
    "run_learning_curve",
    "render_markdown_report",
    "run_candidate_set_baseline",
    "run_cross_source_evaluation",
    "run_experiment",
    "run_experiment_parallel",
    "run_experiments_parallel",
    "run_frequency_baseline",
    "run_report_source_experiment",
    "stratified_folds",
]
