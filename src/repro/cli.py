"""Command-line interface for the QUEST/QATK reproduction.

Subcommands::

    python -m repro stats                 # §3.2 corpus statistics
    python -m repro exp1 [--folds N] [--workers W]   # Fig. 11 (Experiment 1)
    python -m repro exp2 SOURCE [--folds N] [--workers W]  # Fig. 12/13
    python -m repro compare [--top N]     # Fig. 14 distributions
    python -m repro annotators            # §4.5.3 coverage comparison
    python -m repro serve [--port P]      # run the QUEST web app
    python -m repro review                # triage demo: the review queue
    python -m repro override [--ref R]    # triage demo: pin an error code
    python -m repro recover DIR           # crash-recover a database dir

``fieldstudy`` and ``serve`` accept ``--on-error={fail_fast,skip,quarantine}``
to pick the pipeline's degradation policy (see DESIGN.md, "Durability &
failure semantics").

All subcommands operate on the default seeded corpus, so output is
reproducible.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .data import ReportSource, generate_complaints, generate_corpus
from .evaluate import (ExperimentConfig, experiment_subset,
                       run_candidate_set_baseline,
                       run_experiments_parallel, run_frequency_baseline)
from .taxonomy import (ConceptAnnotator, LegacyConceptAnnotator,
                       annotator_coverage)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QUEST/QATK reproduction of Kassner & Mitschang, EDBT 2016")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("stats", help="corpus statistics (§3.2)")

    exp1 = commands.add_parser("exp1", help="Experiment 1 / Fig. 11")
    exp1.add_argument("--folds", type=int, default=5)
    exp1.add_argument("--workers", type=int, default=1,
                      help="worker processes for fold evaluation "
                           "(1 = in-process)")

    exp2 = commands.add_parser("exp2", help="Experiment 2 / Fig. 12-13")
    exp2.add_argument("source", choices=["mechanic", "supplier"])
    exp2.add_argument("--folds", type=int, default=5)
    exp2.add_argument("--workers", type=int, default=1,
                      help="worker processes for fold evaluation "
                           "(1 = in-process)")

    compare = commands.add_parser("compare", help="source comparison / Fig. 14")
    compare.add_argument("--top", type=int, default=3)

    commands.add_parser("annotators", help="annotator coverage (§4.5.3)")

    def add_on_error(command) -> None:
        command.add_argument(
            "--on-error", choices=["fail_fast", "skip", "quarantine"],
            default="fail_fast", dest="on_error",
            help="pipeline error policy: fail_fast (default) aborts on the "
                 "first broken bundle, skip drops it, quarantine drops it "
                 "and reports every failure at the end")

    fieldstudy = commands.add_parser(
        "fieldstudy", help="simulated field study of the QUEST UI (§6)")
    fieldstudy.add_argument("--sessions", type=int, default=200)
    add_on_error(fieldstudy)

    extend = commands.add_parser(
        "extend", help="mine taxonomy-extension proposals from the corpus")
    extend.add_argument("--top", type=int, default=20)

    serve = commands.add_parser(
        "serve", help="run the QUEST web app behind the serving gateway")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--train", type=int, default=2000,
                       help="bundles used to train the demo knowledge base")
    serve.add_argument("--workers", type=int, default=2,
                       help="gateway worker threads")
    serve.add_argument("--worker-mode", choices=["thread", "process"],
                       default="thread", dest="worker_mode",
                       help="run classification on batcher threads or in "
                            "snapshot-seeded worker processes")
    serve.add_argument("--worker-procs", type=int, default=None,
                       dest="worker_procs",
                       help="worker-process count for --worker-mode="
                            "process (default: sized from CPU count)")
    serve.add_argument("--max-queue", type=int, default=64, dest="max_queue",
                       help="admission-control bound; excess requests get 503")
    serve.add_argument("--batch-size", type=int, default=16,
                       dest="batch_size",
                       help="micro-batcher: max coalesced requests per batch")
    serve.add_argument("--batch-wait-ms", type=float, default=2.0,
                       dest="batch_wait_ms",
                       help="micro-batcher: max wait for stragglers (ms)")
    serve.add_argument("--timeout", type=float, default=10.0,
                       help="per-request deadline in seconds (504 past it)")
    serve.add_argument("--keepalive-idle-timeout", type=float, default=30.0,
                       dest="keepalive_idle_timeout",
                       help="seconds a keep-alive connection may idle "
                            "between requests before the server closes it")
    serve.add_argument("--transport", choices=["thread", "async"],
                       default="thread",
                       help="HTTP transport: 'thread' (one handler "
                            "thread per connection) or 'async' (single "
                            "event loop; thousands of idle keep-alive "
                            "connections at near-zero cost)")
    serve.add_argument("--header-timeout", type=float, default=10.0,
                       dest="header_timeout",
                       help="seconds a client gets to finish sending a "
                            "request's line + headers once the first "
                            "byte arrives (slowloris shed deadline)")
    serve.add_argument("--keepalive-max-requests", type=int, default=1000,
                       dest="keepalive_max_requests",
                       help="requests served per keep-alive connection "
                            "before the server sends Connection: close")
    serve.add_argument("--replica-of", default=None, dest="replica_of",
                       metavar="URL",
                       help="run as a read replica of the primary at URL: "
                            "poll its /api/replicate for model snapshots, "
                            "serve reads, refuse writes with 405")
    serve.add_argument("--replication-interval", type=float, default=1.0,
                       dest="replication_interval",
                       help="seconds between replica polls of the primary "
                            "(with --replica-of)")
    add_on_error(serve)

    review = commands.add_parser(
        "review",
        help="demo the triage review queue: classify unlabeled bundles and "
             "print the weakest suggestions first")
    review.add_argument("--train", type=int, default=2000,
                        help="bundles used to train the demo knowledge base")
    review.add_argument("--incoming", type=int, default=50,
                        help="unlabeled bundles classified for triage")
    review.add_argument("--threshold", type=float, default=None,
                        help="review threshold: suggestions below this "
                             "confidence are queued (default: the service's)")
    review.add_argument("--limit", type=int, default=20,
                        help="queue entries printed")

    override = commands.add_parser(
        "override",
        help="demo a triage override: pin an error code on one bundle and "
             "show the pinned re-suggest")
    override.add_argument("--train", type=int, default=2000,
                          help="bundles used to train the demo knowledge base")
    override.add_argument("--incoming", type=int, default=50,
                          help="unlabeled bundles registered in the demo")
    override.add_argument("--ref", default=None,
                          help="reference number to pin (default: the first "
                               "unlabeled bundle)")
    override.add_argument("--code", default=None,
                          help="error code to pin (default: the runner-up "
                               "suggestion, so the pin visibly changes the "
                               "answer)")
    override.add_argument("--reason", default="demo override",
                          help="reason recorded with the override")

    recover = commands.add_parser(
        "recover",
        help="recover a crash-damaged database directory (WAL replay + "
             "quarantine of corrupt rows)")
    recover.add_argument("directory", help="the database directory")
    recover.add_argument("--checkpoint", action="store_true",
                         help="write a fresh snapshot after recovery, "
                              "folding the WAL back in")
    return parser


def _cmd_stats() -> int:
    from .data import corpus_statistics
    corpus = generate_corpus()
    for key, value in corpus_statistics(corpus.bundles).items():
        if isinstance(value, float):
            print(f"{key:<28}{value:>10.1f}")
        else:
            print(f"{key:<28}{value:>10}")
    return 0


def _cmd_exp1(folds: int, workers: int) -> int:
    corpus = generate_corpus()
    bundles = experiment_subset(corpus.bundles)
    annotator = ConceptAnnotator(taxonomy=corpus.taxonomy)
    print(f"Experiment 1 (Fig. 11), {folds}-fold CV, {len(bundles)} bundles, "
          f"{workers} worker(s)")
    configs = [ExperimentConfig(feature_mode=mode, similarity=similarity,
                                folds=folds)
               for mode, similarity in (("words", "jaccard"),
                                        ("words", "overlap"),
                                        ("concepts", "jaccard"),
                                        ("concepts", "overlap"))]
    results = run_experiments_parallel(bundles, configs, corpus.taxonomy,
                                       annotator, max_workers=workers)
    for result in results:
        print(result.accuracy_row()
              + f"  {result.seconds_per_bundle * 1000:.2f} ms/bundle")
    print(run_frequency_baseline(bundles,
                                 ExperimentConfig(folds=folds)).accuracy_row())
    for mode in ("words", "concepts"):
        result = run_candidate_set_baseline(
            bundles, ExperimentConfig(feature_mode=mode, folds=folds),
            corpus.taxonomy, annotator)
        print(result.accuracy_row())
    return 0


def _cmd_exp2(source_name: str, folds: int, workers: int) -> int:
    corpus = generate_corpus()
    bundles = experiment_subset(corpus.bundles)
    annotator = ConceptAnnotator(taxonomy=corpus.taxonomy)
    source = ReportSource.parse(source_name)
    print(f"Experiment 2 ({source.value} reports only), {folds}-fold CV, "
          f"{workers} worker(s)")
    configs = [ExperimentConfig(feature_mode=mode, similarity=similarity,
                                folds=folds, test_sources=(source,))
               for mode, similarity in (("words", "jaccard"),
                                        ("words", "overlap"),
                                        ("concepts", "jaccard"),
                                        ("concepts", "overlap"))]
    results = run_experiments_parallel(bundles, configs, corpus.taxonomy,
                                       annotator, max_workers=workers)
    for config, result in zip(configs, results):
        result.name = f"{config.label} [{source.value} only]"
        print(result.accuracy_row())
    print(run_frequency_baseline(bundles,
                                 ExperimentConfig(folds=folds)).accuracy_row())
    return 0


def _cmd_compare(top: int) -> int:
    from .classify import RankedKnnClassifier
    from .evaluate import build_extractor
    from .knowledge import KnowledgeBase
    from .quest import compare_sources
    corpus = generate_corpus()
    bundles = experiment_subset(corpus.bundles)
    annotator = ConceptAnnotator(taxonomy=corpus.taxonomy)
    extractor = build_extractor("concepts", corpus.taxonomy, annotator)
    classifier = RankedKnnClassifier(
        KnowledgeBase.from_bundles(bundles, extractor), extractor)
    complaints = generate_complaints(corpus.taxonomy, corpus.plan)
    part_of_code = {code.code: code.part_id
                    for code in corpus.plan.all_codes()}
    part_id = corpus.plan.parts[0].part_id
    internal = [bundle for bundle in bundles if bundle.part_id == part_id]
    public = [complaint for complaint in complaints
              if part_of_code[complaint.planted_code] == part_id]
    view = compare_sources(internal, classifier, public, top_n=top,
                           part_id_of_code=part_of_code)
    for distribution in (view.left, view.right):
        print(f"{distribution.source} (n={distribution.total}):")
        for slice_ in distribution.slices():
            print(f"  {slice_.error_code:<8}{slice_.share:>7.1%}")
    return 0


def _cmd_annotators() -> int:
    corpus = generate_corpus()
    texts = [bundle.document_text(include_part_description=False)
             for bundle in corpus.bundles]
    for name, annotator in (
            ("optimized", ConceptAnnotator(taxonomy=corpus.taxonomy)),
            ("legacy", LegacyConceptAnnotator(taxonomy=corpus.taxonomy))):
        stats = annotator_coverage(annotator, texts)
        print(f"{name:<10} zero-concept bundles: "
              f"{stats['without_concepts']}/{stats['total']}, "
              f"mean mentions {stats['mean_mentions']:.2f}")
    return 0


def _cmd_fieldstudy(sessions: int, on_error: str) -> int:
    from .core import QATK, QatkConfig  # noqa: F811 (local import by design)
    from .quest import simulate_field_study
    corpus = generate_corpus()
    bundles = experiment_subset(corpus.bundles)
    historical, incoming = bundles[:-sessions], bundles[-sessions:]
    for mode in ("words", "concepts"):
        qatk = QATK(corpus.taxonomy, QatkConfig(feature_mode=mode,
                                                error_policy=on_error))
        qatk.train(historical)
        service = qatk.make_service()
        report = simulate_field_study(incoming, qatk.classify,
                                      service.full_code_list)
        print(f"{mode:<10} {report.summary()}")
    return 0


def _cmd_extend(top: int) -> int:
    from .taxonomy import TaxonomyExtender
    corpus = generate_corpus()
    bundles = experiment_subset(corpus.bundles)
    extender = TaxonomyExtender(corpus.taxonomy, min_support=8)
    proposals = extender.mine(bundles)
    print(f"{len(proposals)} proposals mined; top {top}:")
    for proposal in proposals[:top]:
        attachment = corpus.taxonomy.get(proposal.concept_id)
        label = attachment.labels.get("en") or attachment.labels.get("de", "?")
        print(f"  {proposal.kind:<11} {proposal.token!r:<22} -> "
              f"{label!r} (score {proposal.score:.2f}, "
              f"{proposal.support} bundles)")
    return 0


def _cmd_serve(port: int, train: int, on_error: str, workers: int,
               max_queue: int, batch_size: int, batch_wait_ms: float,
               timeout: float, worker_mode: str = "thread",
               worker_procs: int | None = None,
               keepalive_idle_timeout: float = 30.0,
               keepalive_max_requests: int = 1000,
               replica_of: str | None = None,
               replication_interval: float = 1.0,
               transport: str = "thread",
               header_timeout: float = 10.0) -> int:
    from .core import QATK, QatkConfig
    from .quest import QuestApp, QuestServer, Role, User, UserStore
    from .serve import GatewayConfig, ServeGateway, SnapshotReplicator
    from .serve.aio import AsyncQuestServer
    corpus = generate_corpus()
    bundles = experiment_subset(corpus.bundles)
    qatk = QATK(corpus.taxonomy, QatkConfig(feature_mode="words",
                                            error_policy=on_error))
    qatk.train(bundles[:train])
    service = qatk.make_service()
    service.register_bundles([bundle.without_label()
                              for bundle in bundles[train:train + 50]])
    users = UserStore(qatk.database)
    users.add(User("expert", Role.POWER_EXPERT, "Demo Expert"))
    gateway = ServeGateway(service, GatewayConfig(
        workers=workers, max_queue=max_queue, max_batch_size=batch_size,
        max_wait_ms=batch_wait_ms, default_timeout=timeout,
        worker_mode=worker_mode, worker_procs=worker_procs,
        # A replica's recommendations are the primary's business to
        # persist; writing them locally would just diverge the stores.
        persist=replica_of is None))
    replicator = None
    if replica_of is not None:
        replicator = SnapshotReplicator(gateway.registry, replica_of,
                                        interval=replication_interval)
    app = QuestApp(service, users, users.get("expert"), gateway=gateway,
                   replica_of=replica_of, replicator=replicator)
    server_cls = AsyncQuestServer if transport == "async" else QuestServer
    server = server_cls(
        app, port=port, idle_timeout=keepalive_idle_timeout,
        max_requests_per_connection=keepalive_max_requests,
        header_timeout=header_timeout)
    host, bound_port = server.address
    gateway.start()
    pool_note = ""
    if worker_mode == "process":
        pool_note = (" + process pool" if gateway.pool_active
                     else " (process pool unavailable; thread fallback)")
    replica_note = (f", replica of {replicator.primary_url} "
                    f"(poll every {replication_interval:g}s)"
                    if replicator is not None else "")
    print(f"QUEST running on http://{host}:{bound_port}/ "
          f"({transport} transport) — "
          f"{workers} worker(s){pool_note}, queue bound {max_queue}, "
          f"batches up to {batch_size} ({batch_wait_ms:g} ms window)"
          f"{replica_note}; Ctrl+C to stop")
    report = None
    try:
        server.start()
        if replicator is not None:
            replicator.start()
        import threading
        threading.Event().wait()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        if replicator is not None:
            replicator.stop()
        try:
            report = server.stop()
        except KeyboardInterrupt:
            # second Ctrl+C during the drain: force-quit without the
            # grace period, but still reject queued work with typed
            # errors rather than dropping it
            print("\nforced shutdown")
            report = app.gateway.stop(grace=0.0)
    stats = gateway.stats_snapshot()
    print(report.summary())
    print(f"served {stats['completed']} requests "
          f"({stats['rejected']} shed, {stats['deadline_exceeded']} expired, "
          f"{stats['degraded']} degraded) — "
          f"p50 {stats['p50_ms']:.1f} ms, p95 {stats['p95_ms']:.1f} ms, "
          f"p99 {stats['p99_ms']:.1f} ms, "
          f"mean batch {stats['mean_batch_size']}")
    if replicator is not None:
        repl = replicator.stats_snapshot()
        print(f"replication: v{repl['replica_version']} of primary "
              f"v{repl['primary_version']}, "
              f"{repl['replication_full']} full / "
              f"{repl['replication_delta']} delta / "
              f"{repl['replication_failed']} failed polls, "
              f"staleness {repl['staleness_seconds']:.1f}s")
    return 0


def _demo_triage_service(train: int, incoming: int):
    """Build the deterministic triage demo: a trained service with
    *incoming* unlabeled bundles registered.  Returns (service, refs)."""
    from .core import QATK, QatkConfig
    corpus = generate_corpus()
    bundles = experiment_subset(corpus.bundles)
    qatk = QATK(corpus.taxonomy, QatkConfig(feature_mode="words"))
    qatk.train(bundles[:train])
    service = qatk.make_service()
    unlabeled = [bundle.without_label()
                 for bundle in bundles[train:train + incoming]]
    service.register_bundles(unlabeled)
    return service, [bundle.ref_no for bundle in unlabeled]


def _cmd_review(train: int, incoming: int, threshold: float | None,
                limit: int) -> int:
    service, refs = _demo_triage_service(train, incoming)
    if threshold is not None:
        service.review_threshold = threshold
    print(f"classifying {len(refs)} unlabeled bundles "
          f"(review threshold {service.review_threshold:g})")
    for ref_no in refs:
        service.suggest(ref_no)
    counts = service.review_queue.counts()
    print(f"queue: {counts['pending']} pending, {counts['claimed']} claimed, "
          f"{counts['resolved']} resolved")
    for entry in service.pending_reviews(limit=limit):
        print(f"  {entry['ref_no']:<12} part {entry['part_id']:<10} "
              f"confidence {entry['confidence']:.3f}")
    return 0


def _cmd_override(train: int, incoming: int, ref: str | None,
                  code: str | None, reason: str) -> int:
    from .quest import Role, User, UserStore
    service, refs = _demo_triage_service(train, incoming)
    users = UserStore(service.database)
    users.add(User("expert", Role.POWER_EXPERT, "Demo Expert"))
    ref_no = ref or refs[0]
    before = service.suggest(ref_no, persist=False)
    top = before.suggestions.top(3)
    print(f"before: {ref_no} -> "
          + ", ".join(f"{s.error_code} ({s.score:.3f})" for s in top)
          + (f" [confidence {before.confidence.score:.3f}]"
             if before.confidence else ""))
    if code is None:
        # Pin the runner-up (or the winner when there is only one
        # candidate) so the demo visibly changes the served answer.
        code = top[1].error_code if len(top) > 1 else top[0].error_code
    record = service.apply_override(users.get("expert"), ref_no, code, reason)
    print(f"pinned {ref_no} to {code} "
          f"(override #{record['override_id']}, reason: {reason!r})")
    after = service.suggest(ref_no)
    winner = after.suggestions.codes[0].error_code
    print(f"after:  {ref_no} -> {winner} (source={after.source}, "
          f"confidence {after.confidence.score:.3f})")
    return 0


def _cmd_recover(directory: str, do_checkpoint: bool) -> int:
    from .relstore import PersistenceError, recover_database, save_database
    try:
        database, report = recover_database(directory)
    except PersistenceError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    print(report.summary())
    if do_checkpoint:
        save_database(database, directory)
        print("checkpoint written (WAL folded into a fresh snapshot)")
    print("recovery " + ("clean" if report.clean else
                         "completed with findings (see above)"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "stats":
        return _cmd_stats()
    if args.command == "exp1":
        return _cmd_exp1(args.folds, args.workers)
    if args.command == "exp2":
        return _cmd_exp2(args.source, args.folds, args.workers)
    if args.command == "compare":
        return _cmd_compare(args.top)
    if args.command == "annotators":
        return _cmd_annotators()
    if args.command == "fieldstudy":
        return _cmd_fieldstudy(args.sessions, args.on_error)
    if args.command == "extend":
        return _cmd_extend(args.top)
    if args.command == "serve":
        return _cmd_serve(args.port, args.train, args.on_error, args.workers,
                          args.max_queue, args.batch_size, args.batch_wait_ms,
                          args.timeout, args.worker_mode, args.worker_procs,
                          args.keepalive_idle_timeout,
                          args.keepalive_max_requests,
                          args.replica_of, args.replication_interval,
                          args.transport, args.header_timeout)
    if args.command == "review":
        return _cmd_review(args.train, args.incoming, args.threshold,
                           args.limit)
    if args.command == "override":
        return _cmd_override(args.train, args.incoming, args.ref, args.code,
                             args.reason)
    if args.command == "recover":
        return _cmd_recover(args.directory, args.checkpoint)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
