"""Dictionary-based German compound splitting.

German quality reports are full of ad-hoc compounds the taxonomy cannot
enumerate ("Kühlmittelverlust", "Lüfterkabelbruch").  A concept annotator
that only sees whole tokens misses them; splitting compounds against a
domain lexicon recovers the parts ("Kühlmittel" + "Verlust") so they can
match concepts individually.  This is a concrete instance of the paper's
"more linguistic preprocessing" future work (§6) specialised to the
domain's dominant language.

The splitter is purely lexicon-driven: it knows nothing about German
morphology beyond the common linking elements (Fugenelemente) ``s``,
``es``, ``n``, ``en``, ``e`` and ``-``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .normalize import normalize_token

#: Linking elements tried between compound parts, longest first.
LINKING_ELEMENTS = ("es", "en", "s", "n", "e", "")

_MIN_PART = 4


class CompoundSplitter:
    """Greedy longest-part compound splitter over a lexicon.

    Args:
        lexicon: known words (e.g. taxonomy surface tokens).  Entries are
            normalized; multiword entries contribute their single tokens.
        min_part: minimal length of a compound part (default 4 — shorter
            parts cause absurd splits).
    """

    def __init__(self, lexicon: Iterable[str], min_part: int = _MIN_PART) -> None:
        self.min_part = min_part
        self._lexicon: set[str] = set()
        for entry in lexicon:
            for token in entry.split():
                normalized = normalize_token(token)
                if len(normalized) >= min_part:
                    self._lexicon.add(normalized)

    def __len__(self) -> int:
        return len(self._lexicon)

    def __contains__(self, word: str) -> bool:
        return normalize_token(word) in self._lexicon

    def split(self, word: str) -> list[str]:
        """Split *word* into known parts; returns ``[word]`` if impossible.

        The split must cover the whole word (modulo linking elements) with
        every part in the lexicon; among covering splits the one with the
        fewest parts wins (greedy longest-prefix with backtracking).
        """
        normalized = normalize_token(word)
        if len(normalized) < 2 * self.min_part:
            return [word]
        parts = self._split_recursive(normalized, depth=0)
        if parts is None or len(parts) < 2:
            return [word]
        return parts

    def _split_recursive(self, remainder: str, depth: int) -> list[str] | None:
        if depth > 5:
            return None
        if not remainder:
            return []
        if remainder in self._lexicon:
            return [remainder]
        # try the longest known prefix first, then backtrack
        for end in range(len(remainder), self.min_part - 1, -1):
            prefix = remainder[:end]
            if prefix not in self._lexicon:
                continue
            rest = remainder[end:]
            for link in LINKING_ELEMENTS:
                if link and not rest.startswith(link):
                    continue
                tail = rest[len(link):] if link else rest
                if tail and len(tail) < self.min_part:
                    continue
                sub = self._split_recursive(tail, depth + 1)
                if sub is not None:
                    return [prefix] + sub
        return None

    def expand(self, tokens: Sequence[str]) -> list[str]:
        """Token list with every splittable compound replaced by its parts
        (unsplittable tokens pass through unchanged)."""
        expanded: list[str] = []
        for token in tokens:
            expanded.extend(self.split(token))
        return expanded


def splitter_from_taxonomy(taxonomy, languages: tuple[str, ...] = ("de",),
                           min_part: int = _MIN_PART) -> CompoundSplitter:
    """Build a splitter whose lexicon is the taxonomy's surface vocabulary."""
    words: list[str] = []
    for concept in taxonomy:
        for language, form in concept.all_surface_forms():
            if language in languages:
                words.append(form)
    return CompoundSplitter(words, min_part=min_part)
