"""Light, language-independent text normalization helpers.

The classification experiments run on raw tokens (§5.1: "without further
preprocessing or normalization"), but the taxonomy annotator and the web
layers need a couple of cheap, reversible-enough normalizations: case
folding and German umlaut transliteration so that "Lüfter", "Luefter" and
"LUEFTER" map to the same surface form.
"""

from __future__ import annotations

_UMLAUT_MAP = {
    "ä": "ae", "ö": "oe", "ü": "ue", "ß": "ss",
    "Ä": "Ae", "Ö": "Oe", "Ü": "Ue",
}


def fold_umlauts(text: str) -> str:
    """Transliterate German umlauts and ß to their ASCII digraphs."""
    return "".join(_UMLAUT_MAP.get(char, char) for char in text)


def normalize_token(token: str) -> str:
    """Canonical matching form of a token: lowercased, umlauts folded."""
    return fold_umlauts(token).lower()


def normalize_phrase(phrase: str) -> tuple[str, ...]:
    """Canonical matching form of a (possibly multiword) phrase."""
    from .tokenizer import tokenize
    return tuple(normalize_token(token) for token in tokenize(phrase))
