"""Linguistic preprocessing: tokenizer, language id, stopwords (§4.4, Fig 8)."""

from .language import (ENGLISH, GERMAN, UNKNOWN, LanguageDetector,
                       LanguageGuess, detect_language, score_language)
from .compound import (CompoundSplitter, splitter_from_taxonomy)
from .normalize import fold_umlauts, normalize_phrase, normalize_token
from .stem import stem, stem_all, stem_english, stem_german
from .stopwords import (ALL_STOPWORDS, ENGLISH_STOPWORDS, GERMAN_STOPWORDS,
                        is_stopword, remove_stopwords)
from .tokenizer import TokenSpan, WhitespaceTokenizer, token_spans, tokenize

__all__ = [
    "ALL_STOPWORDS",
    "CompoundSplitter",
    "ENGLISH",
    "ENGLISH_STOPWORDS",
    "GERMAN",
    "GERMAN_STOPWORDS",
    "LanguageDetector",
    "LanguageGuess",
    "TokenSpan",
    "UNKNOWN",
    "WhitespaceTokenizer",
    "detect_language",
    "fold_umlauts",
    "is_stopword",
    "normalize_phrase",
    "normalize_token",
    "remove_stopwords",
    "score_language",
    "stem",
    "stem_all",
    "stem_english",
    "splitter_from_taxonomy",
    "stem_german",
    "token_spans",
    "tokenize",
]
