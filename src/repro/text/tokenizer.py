"""Whitespace/punctuation tokenization.

The paper deliberately uses "a simple custom whitespace-/punctuation-
tokenizer" (§4.5.2) and no further normalization (§5.1) so that the
pipeline stays language-independent.  We reproduce that: a token is a
maximal run of letters, digits, hyphens or apostrophes; punctuation is
discarded (the knowledge base excludes punctuation, §4.3).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..uima import CAS, AnalysisEngine

_TOKEN_RE = re.compile(r"[^\W_]+(?:[-'][^\W_]+)*", re.UNICODE)


@dataclass(frozen=True)
class TokenSpan:
    """One token with its character offsets."""

    text: str
    begin: int
    end: int


def token_spans(text: str) -> list[TokenSpan]:
    """Tokenize *text* into :class:`TokenSpan` objects.

    Umlauts and other Unicode letters are kept intact; hyphenated compounds
    ("Kabel-Bruch") and apostrophes ("doesn't") stay single tokens.
    """
    return [TokenSpan(match.group(), match.start(), match.end())
            for match in _TOKEN_RE.finditer(text)]


def tokenize(text: str) -> list[str]:
    """Tokenize *text* into plain strings (offsets discarded)."""
    return [match.group() for match in _TOKEN_RE.finditer(text)]


class WhitespaceTokenizer(AnalysisEngine):
    """Analysis engine adding a ``Token`` annotation per token.

    Parameters:
        lowercase: store a lowercased form in the ``normalized`` feature
            (default True; matching in later steps is case-insensitive).
    """

    name = "tokenizer"

    def initialize(self) -> None:
        self._lowercase = bool(self.params.get("lowercase", True))

    def process(self, cas: CAS) -> None:
        for span in token_spans(cas.document_text):
            normalized = span.text.lower() if self._lowercase else span.text
            cas.annotate("Token", span.begin, span.end, normalized=normalized)
