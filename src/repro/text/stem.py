"""Light rule-based stemming for German and English.

The paper's future work includes "introducing more linguistic
preprocessing" (§6).  This module provides a conservative suffix stripper
in the spirit of the Porter/Snowball family, small enough to stay
dependency-free but strong enough to conflate the inflection variance that
messy quality reports produce ("gebrochen"/"gebrochene",
"failing"/"failed").

Stemming is deliberately conservative: a stem is never shorter than three
characters, and the longest matching suffix wins.
"""

from __future__ import annotations

from .normalize import normalize_token

#: Suffixes stripped for each language, longest first.
_GERMAN_SUFFIXES = ("igkeit", "erung", "ungen", "keit", "heit", "lich",
                    "isch", "ung", "est", "end", "ern", "em", "en", "er",
                    "es", "et", "st", "e", "n", "s", "t")
_ENGLISH_SUFFIXES = ("ational", "fulness", "ousness", "iveness", "ization",
                     "ingly", "edly", "ment", "ness", "tion", "sion",
                     "able", "ible", "ance", "ence", "ing", "ed", "er",
                     "es", "ly", "s", "e")

_GERMAN_MIN_STEM = 4
_ENGLISH_MIN_STEM = 3


def _strip_to_fixpoint(word: str, suffixes: tuple[str, ...],
                       min_stem: int) -> str:
    """Strip suffixes repeatedly until nothing applies.

    Iterating (unlike single-pass Porter steps) makes the stemmer
    *conflating by construction*: "gebrochene" -> "gebrochen" -> "gebroch"
    lands on the same stem as "gebrochen" directly, which is the property
    the bag-of-words features need.  It is also what makes :func:`stem`
    idempotent.
    """
    changed = True
    while changed:
        changed = False
        for suffix in suffixes:
            if word.endswith(suffix) and len(word) - len(suffix) >= min_stem:
                word = word[:len(word) - len(suffix)]
                changed = True
                break
    return word


def stem_german(word: str) -> str:
    """Stem one German word (expects a normalized token)."""
    return _strip_to_fixpoint(word, _GERMAN_SUFFIXES, _GERMAN_MIN_STEM)


def stem_english(word: str) -> str:
    """Stem one English word (expects a normalized token)."""
    if word.endswith("ies") and len(word) - 3 >= _ENGLISH_MIN_STEM:
        word = word[:-3] + "y"   # "bodies" -> "body"
    elif word.endswith("ied") and len(word) - 3 >= _ENGLISH_MIN_STEM:
        word = word[:-3] + "y"   # "studied" -> "study"
    return _strip_to_fixpoint(word, _ENGLISH_SUFFIXES, _ENGLISH_MIN_STEM)


def stem(word: str, language: str | None = None) -> str:
    """Normalize and stem *word*.

    With an explicit *language* ("de"/"en") the matching rule set is used;
    without one, both rule sets are tried and the shorter (more reduced)
    result wins — the right behaviour for mixed-language bundles where
    per-token language is unknown.
    """
    normalized = normalize_token(word)
    if language == "de":
        return stem_german(normalized)
    if language == "en":
        return stem_english(normalized)
    german = stem_german(normalized)
    english = stem_english(normalized)
    return german if len(german) <= len(english) else english


def stem_all(words: list[str], language: str | None = None) -> list[str]:
    """Stem a token list (order preserved)."""
    return [stem(word, language) for word in words]
