"""Lightweight language identification (German / English / unknown).

The paper's pipeline contains a Language Detector step (Fig. 8) and the
reports "are mostly a mix of German and English" (§3.2).  We identify the
language of a text span from two cheap, training-free signals:

* stopword hits against the German and English function-word lists, and
* characteristic character patterns (umlauts/ß and frequent digraphs).

This is deliberately simple — the paper's approach "primarily relies on
natural language processing steps which are language-independent", and the
detector only feeds metadata (and the legacy annotator emulation, which is
primary-language-bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..uima import CAS, AnalysisEngine
from .stopwords import ENGLISH_STOPWORDS, GERMAN_STOPWORDS
from .tokenizer import tokenize

GERMAN = "de"
ENGLISH = "en"
UNKNOWN = "unknown"

_GERMAN_CHAR_HINTS = ("ä", "ö", "ü", "ß")
_GERMAN_PATTERNS = ("sch", "cht", "ung", "eit", "tz", "ieren")
_ENGLISH_PATTERNS = ("th", "wh", "ing ", "tion", "ough", "'s")


@dataclass(frozen=True)
class LanguageGuess:
    """Detection result: language code and a 0..1 confidence."""

    language: str
    confidence: float


def score_language(text: str) -> dict[str, float]:
    """Return raw evidence scores for German and English in *text*."""
    words = [word.lower() for word in tokenize(text)]
    if not words:
        return {GERMAN: 0.0, ENGLISH: 0.0}
    german = sum(1.0 for word in words if word in GERMAN_STOPWORDS)
    english = sum(1.0 for word in words if word in ENGLISH_STOPWORDS)
    lowered = text.lower()
    german += sum(lowered.count(hint) for hint in _GERMAN_CHAR_HINTS) * 1.5
    german += sum(lowered.count(pattern) for pattern in _GERMAN_PATTERNS) * 0.25
    english += sum(lowered.count(pattern) for pattern in _ENGLISH_PATTERNS) * 0.25
    # ambiguous words counted for both are fine: only the margin matters
    return {GERMAN: german / len(words), ENGLISH: english / len(words)}


def detect_language(text: str, *, margin: float = 0.02) -> LanguageGuess:
    """Detect the dominant language of *text*.

    Args:
        text: the text to classify.
        margin: minimal normalized score difference to prefer one language;
            below it the result is ``unknown``.
    """
    scores = score_language(text)
    german, english = scores[GERMAN], scores[ENGLISH]
    total = german + english
    if total == 0:
        return LanguageGuess(UNKNOWN, 0.0)
    if abs(german - english) < margin:
        return LanguageGuess(UNKNOWN, 0.5)
    if german > english:
        return LanguageGuess(GERMAN, german / total)
    return LanguageGuess(ENGLISH, english / total)


class LanguageDetector(AnalysisEngine):
    """Engine annotating each ``Section`` (or the whole document) with its
    language and storing the document-level result in CAS metadata.
    """

    name = "language-detector"

    def process(self, cas: CAS) -> None:
        sections = cas.select("Section")
        if sections:
            for section in sections:
                guess = detect_language(cas.covered_text(section))
                cas.annotate("Language", section.begin, section.end,
                             language=guess.language,
                             confidence=guess.confidence)
        document_guess = detect_language(cas.document_text)
        if not sections and cas.document_text:
            cas.annotate("Language", 0, len(cas.document_text),
                         language=document_guess.language,
                         confidence=document_guess.confidence)
        cas.metadata["language"] = document_guess.language
        cas.metadata["language_confidence"] = document_guess.confidence
