"""German and English stopword lists.

§5.2.2 of the paper removes "German and English stopwords (articles and
personal pronouns)" as an optional bag-of-words preprocessing step; it
reports no accuracy change but a sizable speedup.  The lists below cover
articles, pronouns, common prepositions, conjunctions and auxiliaries —
the high-frequency function words that carry no error-discriminating
content in quality reports.
"""

from __future__ import annotations

GERMAN_STOPWORDS: frozenset[str] = frozenset({
    # articles
    "der", "die", "das", "den", "dem", "des", "ein", "eine", "einen",
    "einem", "einer", "eines", "kein", "keine", "keinen", "keinem",
    "keiner", "keines",
    # personal / possessive / demonstrative pronouns
    "ich", "du", "er", "sie", "es", "wir", "ihr", "mich", "dich", "sich",
    "uns", "euch", "mir", "dir", "ihm", "ihn", "ihnen", "mein", "dein",
    "sein", "unser", "euer", "dieser", "diese", "dieses", "diesen",
    "diesem", "jener", "jene", "jenes", "man", "wer", "was", "welche",
    "welcher", "welches",
    # prepositions
    "in", "im", "an", "am", "auf", "aus", "bei", "beim", "mit", "nach",
    "seit", "von", "vom", "zu", "zum", "zur", "über", "unter", "vor",
    "hinter", "neben", "zwischen", "durch", "für", "gegen", "ohne", "um",
    # conjunctions / particles
    "und", "oder", "aber", "denn", "doch", "sondern", "als", "wie", "wenn",
    "weil", "dass", "daß", "ob", "auch", "nur", "noch", "schon", "sehr",
    "so", "dann", "da", "hier", "dort", "nicht", "nein", "ja", "bitte",
    # auxiliaries / frequent verbs
    "ist", "sind", "war", "waren", "wird", "werden", "wurde", "wurden",
    "hat", "haben", "hatte", "hatten", "kann", "können", "konnte", "muss",
    "müssen", "musste", "soll", "sollen", "sollte", "will", "wollen",
    "wollte", "darf", "dürfen", "sei", "bin", "bist", "seid", "wäre",
})

ENGLISH_STOPWORDS: frozenset[str] = frozenset({
    # articles
    "a", "an", "the",
    # personal / possessive / demonstrative pronouns
    "i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us",
    "them", "my", "your", "his", "its", "our", "their", "mine", "yours",
    "this", "that", "these", "those", "who", "whom", "whose", "which",
    "what", "itself", "himself", "herself", "themselves",
    # prepositions
    "in", "on", "at", "by", "for", "with", "about", "against", "between",
    "into", "through", "during", "before", "after", "above", "below",
    "from", "up", "down", "out", "off", "over", "under", "of", "to",
    # conjunctions / particles
    "and", "or", "but", "nor", "so", "yet", "if", "because", "as", "while",
    "when", "where", "than", "then", "too", "very", "not", "no", "yes",
    "also", "just", "only", "here", "there", "again", "once", "please",
    # auxiliaries / frequent verbs
    "is", "are", "was", "were", "be", "been", "being", "am", "do", "does",
    "did", "doing", "have", "has", "had", "having", "will", "would",
    "shall", "should", "can", "could", "may", "might", "must",
})

#: Union used by the bag-of-words stopword filter (the reports mix both
#: languages inside one bundle, so filtering is language-blind).
ALL_STOPWORDS: frozenset[str] = GERMAN_STOPWORDS | ENGLISH_STOPWORDS


def is_stopword(word: str) -> bool:
    """Whether *word* (any case) is a German or English stopword."""
    return word.lower() in ALL_STOPWORDS


def remove_stopwords(words: list[str]) -> list[str]:
    """Return *words* without German/English stopwords (order preserved)."""
    return [word for word in words if word.lower() not in ALL_STOPWORDS]
