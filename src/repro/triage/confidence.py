"""Confidence scoring for ranked error-code lists.

The classifier's raw similarity scores are not comparable across bundles
(a 0.4 Jaccard against a rich candidate pool means something very
different from a 0.4 against two nodes), so triage scores each
:class:`~repro.classify.results.Recommendation` from *observable*
signals instead:

* **agreement** — the fraction of the top-25 candidate nodes voting for
  the winning code.  A pool that concurs is the strongest signal the
  bundle sits in well-charted territory.
* **margin** — the relative gap between the top-1 and top-2 code scores.
  A razor-thin margin means the ranked list's head is effectively a coin
  toss between neighbours.
* **pool size** — how many candidate nodes were scored at all; very few
  candidates means the part/feature combination is thinly covered.
* **part known** — whether the bundle's part ID was in the knowledge
  base.  When it is not, candidate retrieval falls back to *all* nodes
  (Fig. 5), and the pool's agreement is cross-part noise, so the whole
  score is discounted.

The combination is a weighted sum, deliberately simple and fully
deterministic — the calibration report in :mod:`repro.evaluate` is the
check that the weights earn their keep (accuracy@1 must rise with the
confidence decile).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..classify.results import Recommendation

#: Suggestions scoring below this enter the review queue (configurable
#: per service; this default keeps healthy, well-supported suggestions
#: out of engineers' way while catching thin-pool and coin-toss cases).
DEFAULT_REVIEW_THRESHOLD = 0.35

#: Pool size at which the pool-coverage factor saturates.
FULL_POOL = 10

_AGREEMENT_WEIGHT = 0.5
_MARGIN_WEIGHT = 0.3
_POOL_WEIGHT = 0.2
_UNKNOWN_PART_FACTOR = 0.5


@dataclass(frozen=True)
class Confidence:
    """Calibrated confidence for one suggest response."""

    #: The combined score in [0, 1]; higher means more trustworthy.
    score: float
    #: Relative top-1/top-2 score gap in [0, 1] (1.0 when unrivalled).
    margin: float
    #: Fraction of scored candidate nodes voting for the winner.
    agreement: float
    #: Number of candidate nodes that were scored.
    pool_size: int
    #: Whether the part ID was known (False: global fallback fired).
    part_known: bool

    def to_payload(self) -> dict:
        """A JSON-ready mapping (webapp / API responses)."""
        return {
            "score": self.score,
            "margin": self.margin,
            "agreement": self.agreement,
            "pool_size": self.pool_size,
            "part_known": self.part_known,
        }


#: The confidence attached to an engineer's override: a pin is a human
#: decision, trusted absolutely — it never re-enters the review queue.
OVERRIDE_CONFIDENCE = Confidence(score=1.0, margin=1.0, agreement=1.0,
                                 pool_size=0, part_known=True)


def score_confidence(recommendation: Recommendation) -> Confidence:
    """Score one ranked list from its observable signals.

    Pure in the recommendation (same input, same output, on every
    executor), which is what lets the cross-executor parity suite demand
    byte-identical confidence across in-process, thread, process and
    replica serving.
    """
    codes = recommendation.codes
    pool_size = recommendation.pool_size
    part_known = recommendation.part_known
    if not codes:
        return Confidence(score=0.0, margin=0.0, agreement=0.0,
                          pool_size=pool_size, part_known=part_known)
    top_score = codes[0].score
    if len(codes) == 1:
        margin = 1.0
    elif top_score <= 0.0:
        margin = 0.0
    else:
        margin = max(0.0, min(1.0, (top_score - codes[1].score) / top_score))
    agreement = (recommendation.winner_nodes / pool_size
                 if pool_size > 0 else 0.0)
    pool_factor = min(1.0, pool_size / FULL_POOL)
    score = (_AGREEMENT_WEIGHT * agreement
             + _MARGIN_WEIGHT * margin
             + _POOL_WEIGHT * pool_factor)
    if not part_known:
        score *= _UNKNOWN_PART_FACTOR
    return Confidence(score=round(score, 6), margin=round(margin, 6),
                      agreement=round(agreement, 6), pool_size=pool_size,
                      part_known=part_known)
