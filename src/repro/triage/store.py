"""The persistent override store: engineer pins that always win.

An override pins one error code to one bundle.  Pins are append-only
rows in a relstore table — superseding a pin writes a new row and stamps
the old one's ``superseded_by`` with the new row's id, so the full
decision history survives (and recovery can never resurrect a superseded
pin without also replaying the row that superseded it).  The table is
created on the service's database, so when that database is journaled
(``open_database``) every pin rides the WAL like any other write.
"""

from __future__ import annotations

import time

from ..classify.results import Recommendation, ScoredCode
from ..relstore import Column, ColumnType, Database, Schema, col

OVERRIDE_SCHEMA = Schema.build(
    [
        Column("ref_no", ColumnType.TEXT, nullable=False),
        Column("error_code", ColumnType.TEXT, nullable=False),
        Column("actor", ColumnType.TEXT, nullable=False),
        Column("reason", ColumnType.TEXT, nullable=False),
        Column("created_at", ColumnType.REAL, nullable=False),
        Column("superseded_by", ColumnType.INTEGER, nullable=True),
    ],
)


def override_recommendation(ref_no: str, part_id: str,
                            error_code: str) -> Recommendation:
    """The ranked list served for an overridden bundle.

    A single pinned code at score 1.0.  Both the service and the serving
    gateway build override responses through this one helper, so the
    parity suite can demand byte-identical output across executors.
    """
    return Recommendation(ref_no=ref_no, part_id=part_id,
                          codes=[ScoredCode(error_code, 1.0, 1)],
                          pool_size=0, winner_nodes=0, part_known=True)


class OverrideStore:
    """Durable engineer overrides, keyed by bundle reference number."""

    def __init__(self, database: Database) -> None:
        self._table = database.create_table("overrides", OVERRIDE_SCHEMA,
                                            if_not_exists=True)
        if "ix_override_ref" not in self._table.indexes:
            self._table.create_index("ix_override_ref", "ref_no")

    def __len__(self) -> int:
        """Number of *active* (non-superseded) overrides."""
        return len(self.active_map())

    def _ref_row_ids(self, ref_no: str) -> list[int]:
        index = self._table.index_for("ref_no")
        if index is not None:
            return sorted(index.lookup(ref_no))
        return sorted(rid for rid in self._table.row_ids()
                      if self._table.get(rid)["ref_no"] == ref_no)

    def pin(self, actor: str, ref_no: str, error_code: str,
            reason: str = "") -> dict:
        """Pin *error_code* to *ref_no*, superseding any earlier pin.

        Returns the stored override row (with its ``override_id``).
        """
        prior = [rid for rid in self._ref_row_ids(ref_no)
                 if self._table.get(rid)["superseded_by"] is None]
        row = {
            "ref_no": ref_no,
            "error_code": error_code,
            "actor": actor,
            "reason": reason,
            "created_at": time.time(),
            "superseded_by": None,
        }
        row_id = self._table.insert(row)
        for rid in prior:
            self._table.update(rid, {"superseded_by": row_id})
        return {"override_id": row_id, **row}

    def active(self, ref_no: str) -> dict | None:
        """The active override for *ref_no*, or None."""
        for rid in reversed(self._ref_row_ids(ref_no)):
            row = self._table.get(rid)
            if row["superseded_by"] is None:
                return {"override_id": rid, **row}
        return None

    def active_map(self) -> dict[str, str]:
        """All active pins as ``{ref_no: error_code}``.

        This is the mapping that joins the :class:`ModelSnapshot` payload
        so worker processes and replicas serve overrides consistently.
        """
        pins: dict[str, str] = {}
        for row in self._table.select(col("superseded_by").is_null()):
            pins[row["ref_no"]] = row["error_code"]
        return pins

    def history(self, ref_no: str) -> list[dict]:
        """Every pin ever recorded for *ref_no*, oldest first."""
        return [{"override_id": rid, **self._table.get(rid)}
                for rid in self._ref_row_ids(ref_no)]
