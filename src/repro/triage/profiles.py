"""Per-part triage profiles for drift detection.

A part whose override rate climbs, whose hit rate sinks, or whose
confidence distribution slides down is a part whose knowledge nodes no
longer describe the field — exactly the signal the paper's application
phase needs to decide when to re-train.  Profiles are computed on demand
from the durable tables (bundles, assignments, overrides, stored
recommendations, review queue), so they are always consistent with what
recovery would restore.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..classify.results import Recommendation, ScoredCode
from ..relstore import Database
from .confidence import score_confidence


@dataclass(frozen=True)
class PartProfile:
    """Aggregated triage statistics for one part ID."""

    part_id: str
    #: Bundles stored for the part.
    bundles: int
    #: Final code assignments recorded (superseded ones included).
    assignments: int
    #: Assignments taken from the top-10 shortlist.
    suggestion_hits: int
    #: Active (non-superseded) overrides.
    overrides: int
    #: Open review-queue entries.
    reviews_open: int
    #: overrides / bundles (0.0 when no bundles).
    override_rate: float
    #: suggestion_hits / assignments (0.0 when no assignments).
    hit_rate: float
    #: Confidence of stored recommendations: mean / min / max
    #: (all 0.0 when nothing is stored for the part).
    mean_confidence: float
    min_confidence: float
    max_confidence: float

    def to_payload(self) -> dict:
        """A JSON-ready mapping (webapp / API responses)."""
        return {
            "part_id": self.part_id,
            "bundles": self.bundles,
            "assignments": self.assignments,
            "suggestion_hits": self.suggestion_hits,
            "overrides": self.overrides,
            "reviews_open": self.reviews_open,
            "override_rate": round(self.override_rate, 6),
            "hit_rate": round(self.hit_rate, 6),
            "mean_confidence": round(self.mean_confidence, 6),
            "min_confidence": round(self.min_confidence, 6),
            "max_confidence": round(self.max_confidence, 6),
        }


def _stored_confidences(database: Database,
                        part_of: dict[str, str]) -> dict[str, list[float]]:
    """Confidence of every stored recommendation, grouped by part."""
    if not database.has_table("recommendations"):
        return {}
    grouped: dict[str, list[dict]] = {}
    for row in database.table("recommendations").scan():
        grouped.setdefault(row["ref_no"], []).append(row)
    confidences: dict[str, list[float]] = {}
    for ref_no, rows in grouped.items():
        part_id = part_of.get(ref_no)
        if part_id is None:
            continue
        rows.sort(key=lambda row: row["rank"])
        head = rows[0]
        recommendation = Recommendation(
            ref_no=ref_no, part_id=part_id,
            codes=[ScoredCode(row["error_code"], row["score"],
                              row["support"]) for row in rows],
            pool_size=head.get("pool_size", 0),
            winner_nodes=head.get("winner_nodes", 0),
            part_known=head.get("part_known", True))
        confidences.setdefault(part_id, []).append(
            score_confidence(recommendation).score)
    return confidences


def part_profiles(database: Database) -> list[PartProfile]:
    """Build the profile of every part with at least one bundle.

    Sorted by part ID.  Tables that do not exist yet (fresh service, no
    assignments, nothing reviewed) simply contribute zeros.
    """
    if not database.has_table("bundles"):
        return []
    part_of: dict[str, str] = {}
    bundle_counts: dict[str, int] = {}
    for row in database.table("bundles").scan():
        part_of[row["ref_no"]] = row["part_id"]
        bundle_counts[row["part_id"]] = bundle_counts.get(row["part_id"], 0) + 1

    assignments: dict[str, int] = {}
    hits: dict[str, int] = {}
    if database.has_table("assignments"):
        for row in database.table("assignments").scan():
            part_id = part_of.get(row["ref_no"])
            if part_id is None:
                continue
            assignments[part_id] = assignments.get(part_id, 0) + 1
            if row["from_suggestions"]:
                hits[part_id] = hits.get(part_id, 0) + 1

    overrides: dict[str, int] = {}
    if database.has_table("overrides"):
        for row in database.table("overrides").scan():
            if row["superseded_by"] is not None:
                continue
            part_id = part_of.get(row["ref_no"])
            if part_id is not None:
                overrides[part_id] = overrides.get(part_id, 0) + 1

    reviews: dict[str, int] = {}
    if database.has_table("review_queue"):
        for row in database.table("review_queue").scan():
            if row["status"] != "resolved":
                reviews[row["part_id"]] = reviews.get(row["part_id"], 0) + 1

    confidences = _stored_confidences(database, part_of)

    profiles = []
    for part_id in sorted(bundle_counts):
        n_bundles = bundle_counts[part_id]
        n_assign = assignments.get(part_id, 0)
        n_hits = hits.get(part_id, 0)
        n_over = overrides.get(part_id, 0)
        scores = confidences.get(part_id, [])
        profiles.append(PartProfile(
            part_id=part_id,
            bundles=n_bundles,
            assignments=n_assign,
            suggestion_hits=n_hits,
            overrides=n_over,
            reviews_open=reviews.get(part_id, 0),
            override_rate=n_over / n_bundles if n_bundles else 0.0,
            hit_rate=n_hits / n_assign if n_assign else 0.0,
            mean_confidence=sum(scores) / len(scores) if scores else 0.0,
            min_confidence=min(scores) if scores else 0.0,
            max_confidence=max(scores) if scores else 0.0,
        ))
    return profiles
