"""The review queue: weak suggestions routed to a human.

Lifecycle per entry: ``pending -> claimed(actor) -> resolved``, with one
of three resolutions — ``accept`` (the suggestion stood), ``override``
(the engineer pinned a different code) or ``escalate`` (kick upstairs).
Entries drain in ascending-confidence order so engineers always audit
the weakest prediction first.

Claim conflicts raise :class:`~repro.relstore.IntegrityError` (the
webapp maps it to 409); unknown or review-free refs raise
:class:`~repro.quest.errors.UnknownBundleError` (404).
"""

from __future__ import annotations

import itertools

from ..relstore import Column, ColumnType, Database, IntegrityError, Schema


def _no_open_entry(ref_no: str) -> Exception:
    # Imported lazily: repro.quest.service imports this package, so a
    # module-level import of repro.quest here would be circular.
    from ..quest.errors import UnknownBundleError
    return UnknownBundleError(f"no open review entry for {ref_no!r}")

REVIEW_SCHEMA = Schema.build(
    [
        Column("ref_no", ColumnType.TEXT, nullable=False),
        Column("part_id", ColumnType.TEXT, nullable=False),
        Column("confidence", ColumnType.REAL, nullable=False),
        Column("status", ColumnType.TEXT, nullable=False),
        Column("claimed_by", ColumnType.TEXT, nullable=True),
        Column("resolution", ColumnType.TEXT, nullable=True),
        Column("sequence", ColumnType.INTEGER, nullable=False),
    ],
)

#: The accepted terminal outcomes.
RESOLUTIONS = ("accept", "override", "escalate")


class ReviewQueue:
    """A persistent claim/resolve queue over low-confidence suggestions."""

    def __init__(self, database: Database) -> None:
        self._table = database.create_table("review_queue", REVIEW_SCHEMA,
                                            if_not_exists=True)
        if "ix_review_ref" not in self._table.indexes:
            self._table.create_index("ix_review_ref", "ref_no")
        highest = max((row["sequence"] for row in self._table.scan()),
                      default=0)
        self._sequence = itertools.count(highest + 1)

    def __len__(self) -> int:
        """Number of open (pending or claimed) entries."""
        return sum(1 for row in self._table.scan()
                   if row["status"] != "resolved")

    def _open_row(self, ref_no: str) -> tuple[int, dict] | None:
        index = self._table.index_for("ref_no")
        row_ids = (index.lookup(ref_no) if index is not None
                   else self._table.row_ids())
        for rid in sorted(row_ids):
            row = self._table.get(rid)
            if row["ref_no"] == ref_no and row["status"] != "resolved":
                return rid, row
        return None

    # ------------------------------------------------------------------ #
    # intake

    def enqueue(self, ref_no: str, part_id: str, confidence: float) -> bool:
        """Add (or refresh) a review entry for *ref_no*.

        At most one open entry exists per ref: re-suggesting a pending
        bundle updates its confidence in place; a claimed entry is left
        untouched (an engineer is already on it).  Returns True when an
        entry was created or refreshed.
        """
        found = self._open_row(ref_no)
        if found is not None:
            rid, row = found
            if row["status"] == "pending":
                self._table.update(rid, {"confidence": confidence,
                                         "part_id": part_id})
                return True
            return False
        self._table.insert({
            "ref_no": ref_no,
            "part_id": part_id,
            "confidence": confidence,
            "status": "pending",
            "claimed_by": None,
            "resolution": None,
            "sequence": next(self._sequence),
        })
        return True

    # ------------------------------------------------------------------ #
    # inspection

    def entry(self, ref_no: str) -> dict | None:
        """The open entry for *ref_no*, or None."""
        found = self._open_row(ref_no)
        return dict(found[1]) if found is not None else None

    def pending(self, limit: int | None = None) -> list[dict]:
        """Open entries in drain order: ascending confidence, then age.

        Claimed entries are included (they are still open) — they sort by
        the same key, and callers can tell them apart by ``status``.
        """
        rows = [row for row in self._table.scan()
                if row["status"] != "resolved"]
        rows.sort(key=lambda row: (row["confidence"], row["sequence"]))
        return rows[:limit] if limit is not None else rows

    def counts(self) -> dict[str, int]:
        """Entry counts by status (pending / claimed / resolved)."""
        tallies = {"pending": 0, "claimed": 0, "resolved": 0}
        for row in self._table.scan():
            tallies[row["status"]] = tallies.get(row["status"], 0) + 1
        return tallies

    # ------------------------------------------------------------------ #
    # lifecycle

    def claim(self, actor: str, ref_no: str | None = None) -> dict | None:
        """Claim an entry for *actor*.

        With a *ref_no*, claims that entry; without one, claims the
        lowest-confidence pending entry (None when the queue is drained).
        Claiming an entry already claimed by the same actor is a no-op.

        Raises:
            UnknownBundleError: no open entry exists for *ref_no*.
            IntegrityError: the entry is claimed by someone else.
        """
        if ref_no is None:
            queue = [row for row in self.pending()
                     if row["status"] == "pending"]
            if not queue:
                return None
            ref_no = queue[0]["ref_no"]
        found = self._open_row(ref_no)
        if found is None:
            raise _no_open_entry(ref_no)
        rid, row = found
        if row["status"] == "claimed" and row["claimed_by"] != actor:
            raise IntegrityError(
                f"review entry for {ref_no!r} is already claimed by "
                f"{row['claimed_by']!r}")
        self._table.update(rid, {"status": "claimed", "claimed_by": actor})
        return self._table.get(rid)

    def resolve(self, actor: str, ref_no: str, resolution: str,
                *, force: bool = False) -> dict:
        """Resolve the open entry for *ref_no* with *resolution*.

        A pending entry may be resolved directly (claiming first is not
        mandatory).  *force* skips the claim-ownership check — used when
        an override pin lands from someone other than the claimant, since
        a pin is decisive regardless of who holds the claim.

        Raises:
            ValueError: unknown *resolution*.
            UnknownBundleError: no open entry for *ref_no*.
            IntegrityError: claimed by a different actor (unless forced).
        """
        if resolution not in RESOLUTIONS:
            raise ValueError(f"unknown resolution {resolution!r}; expected "
                             f"one of {', '.join(RESOLUTIONS)}")
        found = self._open_row(ref_no)
        if found is None:
            raise _no_open_entry(ref_no)
        rid, row = found
        if (not force and row["status"] == "claimed"
                and row["claimed_by"] != actor):
            raise IntegrityError(
                f"review entry for {ref_no!r} is claimed by "
                f"{row['claimed_by']!r}, not {actor!r}")
        self._table.update(rid, {"status": "resolved",
                                 "resolution": resolution,
                                 "claimed_by": actor})
        return self._table.get(rid)
