"""Human-in-the-loop triage over ranked suggestions.

The paper's QUEST is an engineer-facing tool (§4.5.4, Fig. 14): the
classifier proposes, the quality engineer decides.  This package adds the
machinery that makes that loop workable at scale:

* :func:`score_confidence` — a calibrated confidence per ranked list,
  from observable signals only (no ground truth needed at serve time);
* :class:`OverrideStore` — durable engineer pins that always win over
  the classifier and survive re-runs and crash recovery;
* :class:`ReviewQueue` — a claim/resolve queue that routes the weakest
  suggestions to a human, lowest confidence first;
* :func:`part_profiles` — per-part aggregates (override rate, hit rate,
  confidence distribution) for drift detection.
"""

from .confidence import (DEFAULT_REVIEW_THRESHOLD, OVERRIDE_CONFIDENCE,
                         Confidence, score_confidence)
from .profiles import PartProfile, part_profiles
from .queue import RESOLUTIONS, REVIEW_SCHEMA, ReviewQueue
from .store import OVERRIDE_SCHEMA, OverrideStore, override_recommendation

__all__ = [
    "Confidence",
    "DEFAULT_REVIEW_THRESHOLD",
    "OVERRIDE_CONFIDENCE",
    "OVERRIDE_SCHEMA",
    "OverrideStore",
    "PartProfile",
    "RESOLUTIONS",
    "REVIEW_SCHEMA",
    "ReviewQueue",
    "override_recommendation",
    "part_profiles",
    "score_confidence",
]
