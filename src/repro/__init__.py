"""repro — reproduction of Kassner & Mitschang, *Exploring Text Classification
for Messy Data* (EDBT 2016).

The package implements the paper's QUEST/QATK system end to end:

* :mod:`repro.relstore` — embedded relational store (persistence substrate)
* :mod:`repro.uima` — mini-UIMA analysis framework (CAS, engines, pipelines)
* :mod:`repro.text` — tokenizer, language identification, stopwords
* :mod:`repro.taxonomy` — multilingual automotive part/error taxonomy + annotators
* :mod:`repro.data` — data-bundle model and synthetic OEM / NHTSA corpora
* :mod:`repro.knowledge` — knowledge nodes and the knowledge base
* :mod:`repro.classify` — ranked-list kNN, similarity measures, baselines
* :mod:`repro.evaluate` — stratified cross-validation and accuracy@k
* :mod:`repro.quest` — QUEST service layer, comparison views, mini web app
* :mod:`repro.serve` — concurrent serving gateway (queue, batcher, workers)
* :mod:`repro.core` — the QATK pipeline facade (Fig. 8 of the paper)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
