"""Deterministic fault injection for robustness testing.

A :class:`FaultPlan` is a *seeded* source of faults: every decision it
makes — where to truncate a file, which byte to flip, which call to fail —
comes from one ``random.Random(seed)`` stream, so a failing scenario
reproduces exactly from its seed alone.  The tier-2 fault suite runs the
same scenarios across several seeds (``make test-faults``).

Fault kinds (matching the crash modes the storage/pipeline layers defend
against):

* :meth:`FaultPlan.raise_on_nth` — wrap a callable so its *n*-th
  invocation raises (process dies mid-save, annotator blows up on one CAS).
* :meth:`FaultPlan.flaky` — wrap a callable so its first *k* invocations
  raise, then it works (transient faults; proves retry paths).
* :meth:`FaultPlan.truncate_file` — cut a file at a (seeded) byte offset
  (torn write / power loss mid-append).
* :meth:`FaultPlan.flip_byte` — XOR one (seeded) byte (bit rot, bad
  block; proves checksums catch silent corruption).
* :meth:`FaultPlan.slow` — wrap a callable with a delay (stragglers;
  proves timeouts/backoff don't change results).
"""

from __future__ import annotations

import random
import time
from pathlib import Path
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


class FaultInjected(Exception):
    """The exception raised by injected faults (never raised by real code,
    so tests can assert it traveled through the system under test)."""


class FaultPlan:
    """A seeded, reproducible source of injected faults.

    Args:
        seed: drives every random choice this plan makes.  Two plans with
            the same seed inject byte-identical faults.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        #: Human-readable log of every fault injected, for test diagnostics.
        self.injected: list[str] = []

    def _note(self, message: str) -> None:
        self.injected.append(message)

    # ------------------------------------------------------------------ #
    # call faults

    def raise_on_nth(self, func: F, n: int,
                     exc_type: type[Exception] = FaultInjected) -> F:
        """Wrap *func* so its *n*-th call (1-based) raises *exc_type*.

        Calls before and after the *n*-th pass through unchanged, so a
        crash "mid-save" leaves earlier writes on disk exactly as a real
        crash would.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        calls = 0

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            nonlocal calls
            calls += 1
            if calls == n:
                self._note(f"raise_on_nth: call {n} of "
                           f"{getattr(func, '__name__', func)!r}")
                raise exc_type(f"injected fault on call {n}")
            return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    def flaky(self, func: F, fail_times: int = 1,
              exc_type: type[Exception] = FaultInjected) -> F:
        """Wrap *func* so its first *fail_times* calls raise, then it
        succeeds — the canonical transient fault for retry tests."""
        if fail_times < 0:
            raise ValueError("fail_times must be >= 0")
        calls = 0

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            nonlocal calls
            calls += 1
            if calls <= fail_times:
                self._note(f"flaky: failing call {calls}/{fail_times} of "
                           f"{getattr(func, '__name__', func)!r}")
                raise exc_type(f"injected transient fault "
                               f"(call {calls} of {fail_times})")
            return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    def slow(self, func: F, seconds: float = 0.01,
             sleep: Callable[[float], None] = time.sleep) -> F:
        """Wrap *func* to sleep *seconds* before every call."""

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            self._note(f"slow: {seconds}s before "
                       f"{getattr(func, '__name__', func)!r}")
            sleep(seconds)
            return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # file faults

    def truncate_file(self, path: str | Path,
                      keep_bytes: int | None = None) -> int:
        """Truncate *path* at a seeded offset (or exactly *keep_bytes*).

        Simulates a torn write / power loss mid-append.  The offset is
        drawn uniformly from ``[0, size)``, so over seeds it lands both
        mid-record and on record boundaries.  Returns the new size.
        """
        path = Path(path)
        size = path.stat().st_size
        if keep_bytes is None:
            keep_bytes = self._rng.randrange(size) if size else 0
        keep_bytes = max(0, min(keep_bytes, size))
        with path.open("r+b") as handle:
            handle.truncate(keep_bytes)
        self._note(f"truncate_file: {path.name} {size} -> {keep_bytes} bytes")
        return keep_bytes

    def flip_byte(self, path: str | Path,
                  position: int | None = None) -> int:
        """XOR one byte of *path* with a seeded non-zero mask.

        Simulates silent corruption (bit rot, bad block) that only a
        checksum can catch.  Returns the flipped position.

        Raises:
            ValueError: if the file is empty (nothing to corrupt).
        """
        path = Path(path)
        data = bytearray(path.read_bytes())
        if not data:
            raise ValueError(f"cannot flip a byte of empty file {path}")
        if position is None:
            position = self._rng.randrange(len(data))
        mask = self._rng.randrange(1, 256)
        data[position] ^= mask
        path.write_bytes(bytes(data))
        self._note(f"flip_byte: {path.name}[{position}] ^= {mask:#04x}")
        return position

    def __repr__(self) -> str:
        return f"<FaultPlan seed={self.seed} injected={len(self.injected)}>"
