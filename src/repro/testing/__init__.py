"""Test support utilities shipped with the package.

:mod:`repro.testing.faults` provides the deterministic fault-injection
harness the robustness test suite (tier 2, ``pytest -m faults``) is built
on.  It lives in ``src`` rather than ``tests`` so examples, benchmarks and
downstream users can exercise failure paths the same way the test suite
does.
"""

from .faults import FaultInjected, FaultPlan

__all__ = ["FaultInjected", "FaultPlan"]
