"""Data bundles in and out of the CAS (§4.5.2).

"One CAS contains one data bundle, including all available reports and
text descriptions plus the part ID and error code."  Each report becomes a
``Section`` annotation over its span in the combined document, so engines
downstream can work per report.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..data.bundle import DataBundle, ReportSource, TEST_TIME_SOURCES
from ..data.schema import load_bundles
from ..relstore import Database
from ..uima import CAS, CollectionReader


def bundle_to_cas(bundle: DataBundle, *, training: bool = False,
                  sources: Sequence[ReportSource] | None = None) -> CAS:
    """Build the CAS for one data bundle.

    Args:
        bundle: the bundle to analyse.
        training: include the final OEM report and the error-code
            description (only available for already-classified data).
        sources: restrict to specific report sources (Experiment 2); when
            None, the phase default applies.
    """
    if sources is None:
        sources = tuple(ReportSource) if training else TEST_TIME_SOURCES
    segments: list[tuple[str, str]] = []
    for source in sources:
        report = bundle.report(source)
        if report is not None:
            segments.append((source.value, report.text))
    if bundle.part_description:
        segments.append(("part_description", bundle.part_description))
    if training and bundle.error_description:
        segments.append(("error_description", bundle.error_description))

    text_parts: list[str] = []
    spans: list[tuple[str, int, int]] = []
    offset = 0
    for label, text in segments:
        if text_parts:
            offset += 1  # the joining newline
        spans.append((label, offset, offset + len(text)))
        text_parts.append(text)
        offset += len(text)
    cas = CAS("\n".join(text_parts))
    for label, begin, end in spans:
        cas.annotate("Section", begin, end, source=label)
    cas.metadata["ref_no"] = bundle.ref_no
    cas.metadata["part_id"] = bundle.part_id
    cas.metadata["article_code"] = bundle.article_code
    if training:
        cas.metadata["error_code"] = bundle.error_code
    return cas


class BundleReader(CollectionReader):
    """Reader over an in-memory bundle collection (step 1 of Fig. 8)."""

    def __init__(self, bundles: Iterable[DataBundle], *,
                 training: bool = False,
                 sources: Sequence[ReportSource] | None = None) -> None:
        self._bundles = bundles
        self._training = training
        self._sources = sources

    def read(self) -> Iterator[CAS]:
        for bundle in self._bundles:
            yield bundle_to_cas(bundle, training=self._training,
                                sources=self._sources)


class DatabaseBundleReader(BundleReader):
    """Reader pulling data bundles from the relational raw tables
    ("read data from the database and combine related reports into one
    document")."""

    def __init__(self, database: Database, *, training: bool = False,
                 sources: Sequence[ReportSource] | None = None) -> None:
        super().__init__(load_bundles(database), training=training,
                         sources=sources)
