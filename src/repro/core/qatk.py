"""The QATK facade: assemble and run the Fig. 8 pipeline.

This is the toolbox the paper describes in §4.1/§4.4: a modular analytics
pipeline that (training phase) extracts structure from unstructured
reports into a knowledge base, and (test/application phase) assigns scored
error-code recommendations to new data bundles, persisting everything in
the relational store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..classify.baselines import CodeFrequencyBaseline
from ..classify.knn import DEFAULT_NODE_CUTOFF, RankedKnnClassifier
from ..classify.results import Recommendation
from ..data.bundle import DataBundle, ReportSource
from ..evaluate.experiment import build_extractor
from ..knowledge.base import KnowledgeBase
from ..quest.service import QuestService
from ..relstore import Database
from ..taxonomy.annotator import ConceptAnnotator
from ..taxonomy.builder import build_taxonomy
from ..taxonomy.model import Taxonomy
from ..text.language import LanguageDetector
from ..text.tokenizer import WhitespaceTokenizer
from ..uima import AnalysisEngine, Pipeline
from .cas_io import BundleReader, bundle_to_cas
from .engines import (RECOMMENDATION_KEY, ClassifierEngine,
                      KnowledgeBaseConsumer, RecommendationConsumer)


@dataclass
class QatkConfig:
    """Configuration of a QATK instance."""

    feature_mode: str = "concepts"
    similarity: str = "jaccard"
    node_cutoff: int = DEFAULT_NODE_CUTOFF
    annotate_concepts: bool = True
    extra_engines: list[AnalysisEngine] = field(default_factory=list)
    #: Pipeline degradation semantics (see :class:`repro.uima.Pipeline`):
    #: ``fail_fast`` (default, the historical behavior), ``skip`` or
    #: ``quarantine``.
    error_policy: str = "fail_fast"
    #: Per-CAS retries with exponential backoff before the policy applies.
    max_retries: int = 0
    retry_backoff: float = 0.0


class QATK:
    """Quality Analytics Toolkit.

    Typical use::

        qatk = QATK(taxonomy)
        qatk.train(classified_bundles)
        recommendation = qatk.classify(new_bundle)
    """

    def __init__(self, taxonomy: Taxonomy | None = None,
                 config: QatkConfig | None = None,
                 database: Database | None = None) -> None:
        self.taxonomy = taxonomy if taxonomy is not None else build_taxonomy()
        self.config = config or QatkConfig()
        self.database = database if database is not None else Database("qatk")
        self.annotator = ConceptAnnotator(taxonomy=self.taxonomy)
        self.extractor = build_extractor(self.config.feature_mode,
                                         self.taxonomy, self.annotator)
        self.knowledge_base = KnowledgeBase(
            feature_kind=self.extractor.name, database=self.database)
        self.classifier = RankedKnnClassifier(
            self.knowledge_base, self.extractor, self.config.similarity,
            self.config.node_cutoff)
        self._frequency_baseline = CodeFrequencyBaseline()

    # ------------------------------------------------------------------ #
    # pipeline assembly (Fig. 8)

    def analysis_engines(self) -> list[AnalysisEngine]:
        """Step 2 of Fig. 8: unstructured-data analytics engines."""
        engines: list[AnalysisEngine] = [WhitespaceTokenizer(),
                                         LanguageDetector()]
        if self.config.annotate_concepts:
            engines.append(self.annotator)
        engines.extend(self.config.extra_engines)
        return engines

    def _pipeline_options(self) -> dict:
        return {"error_policy": self.config.error_policy,
                "max_retries": self.config.max_retries,
                "retry_backoff": self.config.retry_backoff}

    def training_pipeline(self, bundles: Iterable[DataBundle]) -> Pipeline:
        """The full training-phase pipeline over *bundles*."""
        return Pipeline(BundleReader(bundles, training=True),
                        self.analysis_engines(),
                        [KnowledgeBaseConsumer(self.knowledge_base)],
                        **self._pipeline_options())

    def classification_pipeline(self, bundles: Iterable[DataBundle],
                                sources: Sequence[ReportSource] | None = None,
                                ) -> Pipeline:
        """The test/application-phase pipeline over *bundles*."""
        engines = self.analysis_engines()
        engines.append(ClassifierEngine.for_knn(self.classifier,
                                                self.knowledge_base.feature_kind))
        return Pipeline(BundleReader(bundles, training=False, sources=sources),
                        engines,
                        [RecommendationConsumer(self.database)],
                        **self._pipeline_options())

    # ------------------------------------------------------------------ #
    # convenience API

    def train(self, bundles: Iterable[DataBundle]) -> int:
        """Run the training phase; returns the number of bundles consumed."""
        bundles = list(bundles)
        processed = self.training_pipeline(bundles).run()
        self._frequency_baseline = CodeFrequencyBaseline.from_bundles(bundles)
        return processed

    def classify(self, bundle: DataBundle,
                 sources: Sequence[ReportSource] | None = None,
                 ) -> Recommendation:
        """Classify one bundle through the full pipeline."""
        pipeline = self.classification_pipeline([], sources=sources)
        cas = bundle_to_cas(bundle, training=False, sources=sources)
        pipeline.process_one(cas)
        return cas.metadata[RECOMMENDATION_KEY]

    def classify_many(self, bundles: Iterable[DataBundle],
                      sources: Sequence[ReportSource] | None = None,
                      ) -> list[Recommendation]:
        """Classify bundles, persisting the scored lists (Fig. 8, 3c)."""
        consumer = RecommendationConsumer(self.database)
        pipeline = self.classification_pipeline(bundles, sources=sources)
        pipeline.consumers = [consumer]
        pipeline.run()
        return consumer.collected

    def make_service(self, database: Database | None = None) -> QuestService:
        """Build the QUEST service layer on top of this toolkit."""
        return QuestService(database if database is not None else self.database,
                            self.classifier, self._frequency_baseline)

    def __repr__(self) -> str:
        return (f"<QATK mode={self.config.feature_mode!r} "
                f"similarity={self.config.similarity!r} "
                f"nodes={len(self.knowledge_base)}>")
