"""QATK core: pipeline assembly and the toolkit facade (Fig. 8)."""

from .cas_io import BundleReader, DatabaseBundleReader, bundle_to_cas
from .engines import (RECOMMENDATION_KEY, ClassifierEngine,
                      KnowledgeBaseConsumer, RecommendationConsumer,
                      cas_features)
from .qatk import QATK, QatkConfig

__all__ = [
    "BundleReader",
    "ClassifierEngine",
    "DatabaseBundleReader",
    "KnowledgeBaseConsumer",
    "QATK",
    "QatkConfig",
    "RECOMMENDATION_KEY",
    "RecommendationConsumer",
    "bundle_to_cas",
    "cas_features",
]
