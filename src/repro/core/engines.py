"""Structured-data analytics stages of the Fig. 8 pipeline.

* :class:`KnowledgeBaseConsumer` — training phase step 3: extract a
  knowledge node (part ID, error code, features) from each analysed CAS
  and persist it.
* :class:`ClassifierEngine` — test/application phase step 3b: the
  classification step, realized "as an extension point where different
  classification algorithms can be plugged in easily".
* :class:`RecommendationConsumer` — step 3c: result persistence.
"""

from __future__ import annotations

from typing import Any, Callable

from ..classify.knn import RankedKnnClassifier
from ..classify.results import Recommendation, store_recommendations
from ..knowledge.base import KnowledgeBase
from ..relstore import Database
from ..uima import CAS, AnalysisEngine, CasConsumer

#: CAS metadata key under which the classifier deposits its result.
RECOMMENDATION_KEY = "recommendation"


def cas_features(cas: CAS, feature_kind: str) -> frozenset[str]:
    """Collect the classification features recorded in a CAS.

    ``concepts`` uses ``ConceptMention`` annotations, anything else the
    ``Token`` annotations' normalized-or-covered text (the bag-of-words
    path stores raw tokens; §5.1 works without normalization).
    """
    if feature_kind == "concepts":
        return frozenset(annotation.features["concept_id"]
                         for annotation in cas.select("ConceptMention"))
    return frozenset(cas.covered_text(annotation)
                     for annotation in cas.select("Token"))


class KnowledgeBaseConsumer(CasConsumer):
    """Training-phase consumer building the knowledge base (Fig. 8, 3a/b)."""

    def __init__(self, knowledge_base: KnowledgeBase) -> None:
        self.knowledge_base = knowledge_base
        self.consumed = 0

    def consume(self, cas: CAS) -> None:
        error_code = cas.metadata.get("error_code")
        if error_code is None:
            return  # nothing to learn from unclassified data
        features = cas_features(cas, self.knowledge_base.feature_kind)
        self.knowledge_base.add_observation(cas.metadata["part_id"],
                                            error_code, features)
        self.consumed += 1


class ClassifierEngine(AnalysisEngine):
    """The pluggable classification step (Fig. 8, 3b).

    Parameters:
        classify: a callable ``(part_id, features, ref_no) ->
            Recommendation``; pass a bound
            :meth:`RankedKnnClassifier.rank_codes` or any replacement
            algorithm.
        feature_kind: which CAS annotations carry the features.
    """

    name = "classifier"

    def initialize(self) -> None:
        classify = self.params.get("classify")
        if classify is None:
            raise TypeError("ClassifierEngine requires a classify= callable")
        self._classify: Callable[[str, frozenset[str], str], Recommendation] = classify
        self._feature_kind: str = self.params.get("feature_kind", "words")

    def process(self, cas: CAS) -> None:
        features = cas_features(cas, self._feature_kind)
        recommendation = self._classify(cas.metadata["part_id"], features,
                                        cas.metadata.get("ref_no", ""))
        cas.metadata[RECOMMENDATION_KEY] = recommendation

    @classmethod
    def for_knn(cls, classifier: RankedKnnClassifier,
                feature_kind: str) -> "ClassifierEngine":
        """Build the engine around the paper's ranked kNN classifier."""
        def classify(part_id: str, features: frozenset[str],
                     ref_no: str) -> Recommendation:
            return classifier.rank_codes(part_id, features, ref_no=ref_no)
        return cls(classify=classify, feature_kind=feature_kind)


class RecommendationConsumer(CasConsumer):
    """Result persistence (Fig. 8, 3c): scored codes into the database."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.collected: list[Recommendation] = []

    def consume(self, cas: CAS) -> None:
        recommendation: Any = cas.metadata.get(RECOMMENDATION_KEY)
        if recommendation is not None:
            self.collected.append(recommendation)

    def finish(self) -> None:
        if self.collected:
            store_recommendations(self.database, self.collected)
